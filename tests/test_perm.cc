#include "perm/families.h"
#include "perm/permutation.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(IdentityPermutation) {
  const Permutation id = Permutation::identity(5);
  EXPECT_EQ(id.size(), 5);
  EXPECT_TRUE(id.is_identity());
  EXPECT_FALSE(id.is_derangement());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(id(i), i);
  }
  EXPECT_EQ(Permutation::identity(0).size(), 0);
}

POPS_TEST(RandomPermutationIsBijective) {
  Rng rng(1);
  for (const int n : {1, 2, 17, 256}) {
    const Permutation pi = Permutation::random(n, rng);
    EXPECT_EQ(pi.size(), n);
    std::vector<bool> seen(as_size(n), false);
    for (int i = 0; i < n; ++i) {
      EXPECT_FALSE(seen[as_size(pi(i))]);
      seen[as_size(pi(i))] = true;
    }
  }
}

POPS_TEST(RandomDerangementHasNoFixedPoints) {
  Rng rng(2);
  for (const int n : {2, 3, 10, 100}) {
    const Permutation pi = Permutation::random_derangement(n, rng);
    EXPECT_TRUE(pi.is_derangement());
  }
}

POPS_TEST(InverseComposesToIdentity) {
  Rng rng(3);
  const Permutation pi = Permutation::random(40, rng);
  const Permutation inv = pi.inverse();
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(inv(pi(i)), i);
    EXPECT_EQ(pi(inv(i)), i);
  }
}

POPS_TEST(CycleNotation) {
  // The Figure 3 permutation of the paper.
  const Permutation pi({5, 1, 7, 2, 0, 6, 3, 8, 4});
  EXPECT_EQ(pi.to_string(), "(0 5 6 3 2 7 8 4)(1)");
  EXPECT_EQ(Permutation::identity(2).to_string(), "(0)(1)");
}

POPS_TEST(VectorReversal) {
  const Permutation rev = vector_reversal(6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(rev(i), 5 - i);
  }
  EXPECT_TRUE(vector_reversal(2).is_derangement());
}

POPS_TEST(GroupRotation) {
  // POPS(2, 3): processor (group, index) -> (group + 1 mod 3, index).
  const Permutation rot = group_rotation(2, 3, 1);
  EXPECT_EQ(rot.size(), 6);
  EXPECT_EQ(rot(0), 2);
  EXPECT_EQ(rot(1), 3);
  EXPECT_EQ(rot(4), 0);
  EXPECT_EQ(rot(5), 1);
  EXPECT_TRUE(rot.is_derangement());
  // Shift 0 is the identity; negative shifts wrap.
  EXPECT_TRUE(group_rotation(4, 4, 0).is_identity());
  EXPECT_TRUE(group_rotation(2, 3, -1)
                  .images() == group_rotation(2, 3, 2).images());
}

}  // namespace
}  // namespace pops
