// Multi-threaded smokes for the thread-safety layer, run under TSan in
// CI: two independent engines routing disjoint topologies on two
// threads (the BatchRouter confinement discipline), concurrent
// submitters sharing one mutex-guarded TrafficServer, the Mutex
// wrapper's exclusion, and the thread-locality of the allocation
// guard. Expectation macros are not thread-safe, so worker threads
// record into atomics and the main thread asserts after join.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pops/patterns.h"
#include "routing/engine.h"
#include "serve/traffic_server.h"
#include "support/alloc_guard.h"
#include "support/mutex.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(TwoEnginesOnTwoThreadsRouteDisjointTopologies) {
  std::atomic<int> bad_schedules{0};
  const auto worker = [&bad_schedules](int d, int g, std::uint64_t seed) {
    const Topology topo(d, g);
    RoutingEngine engine(topo);
    Rng rng(seed);
    for (int trial = 0; trial < 200; ++trial) {
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      const FlatSchedule& schedule = engine.route_best(pi);
      // route_best verifies both candidates on its internal simulator
      // and never exceeds the Theorem 2 bound.
      if (schedule.slot_count() < 1 ||
          schedule.slot_count() > theorem2_slots(topo)) {
        ++bad_schedules;
      }
    }
  };
  std::thread a(worker, 4, 5, std::uint64_t{11});
  std::thread b(worker, 3, 7, std::uint64_t{12});
  a.join();
  b.join();
  EXPECT_EQ(bad_schedules.load(), 0);
}

POPS_TEST(ConcurrentSubmittersShareOneServer) {
  const Topology topo(4, 4);
  TrafficServer server(topo);
  constexpr int kThreads = 2;
  constexpr int kDemandsPerThread = 600;
  const auto worker = [&server, &topo](std::uint64_t seed) {
    ArrivalConfig config;
    config.seed = seed;
    ArrivalGenerator generator(topo, config);
    for (int i = 0; i < kDemandsPerThread; ++i) {
      server.submit(generator.next());
    }
  };
  std::thread a(worker, std::uint64_t{101});
  std::thread b(worker, std::uint64_t{202});
  a.join();
  b.join();
  server.flush();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.demands_routed,
            static_cast<long long>(kThreads * kDemandsPerThread));
  EXPECT_TRUE(stats.windows_routed > 0);
  // Every window met its h-relation budget exactly, interleaving or
  // not.
  EXPECT_EQ(stats.slots_executed, stats.budget_slots);
  EXPECT_EQ(server.pending_demands(), 0);
}

POPS_TEST(MutexProvidesExclusion) {
  Mutex mu;
  long long counter = 0;  // guarded by mu (by hand in this test)
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter,
            static_cast<long long>(kThreads) * kIncrements);
}

#if POPS_ALLOC_GUARD

POPS_TEST(AllocationBanIsThreadLocal) {
  // A ban on thread A must not constrain thread B: B allocates freely
  // while A sits inside an armed ban. The stage handshake keeps A's
  // ban provably alive across B's allocation.
  std::atomic<int> stage{0};
  std::atomic<bool> allocated{false};
  std::thread banned([&stage] {
    ScopedAllocationBan ban("test: thread-local ban");
    stage.store(1);
    while (stage.load() < 2) {
    }
  });
  std::thread allocating([&stage, &allocated] {
    while (stage.load() < 1) {
    }
    std::vector<int> block(4096, 1);
    allocated.store(block[0] == 1);
    stage.store(2);
  });
  banned.join();
  allocating.join();
  EXPECT_TRUE(allocated.load());
}

#endif  // POPS_ALLOC_GUARD

}  // namespace
}  // namespace pops
