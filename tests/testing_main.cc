#include "tests/testing.h"

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace pops::testing {

std::vector<TestCase>& registry() {
  static std::vector<TestCase> tests;
  return tests;
}

namespace {
int failure_count = 0;
}  // namespace

bool register_test(const std::string& name, std::function<void()> body) {
  registry().push_back(TestCase{name, std::move(body)});
  return true;
}

void report_failure(const std::string& file, int line,
                    const std::string& message) {
  ++failure_count;
  std::cerr << "  FAILED " << file << ":" << line << ": " << message
            << '\n';
}

bool dies_by_abort(const std::function<void()>& body) {
  return dies_by_abort(body, nullptr);
}

bool dies_by_abort(const std::function<void()>& body,
                   std::string* message) {
  std::fflush(nullptr);
  int fds[2] = {-1, -1};
  if (message != nullptr && pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {  // fork failed: report as "did not abort"
    if (message != nullptr) {
      close(fds[0]);
      close(fds[1]);
    }
    return false;
  }
  if (pid == 0) {
    // Child: the POPS_CHECK message is expected — keep it out of the
    // test log (or hand it to the parent through the pipe when the
    // caller wants to match it). _Exit skips atexit handlers (and
    // sanitizer leak checks) so a body that wrongly returns exits
    // cleanly with 0.
    if (message != nullptr) {
      dup2(fds[1], STDERR_FILENO);
      close(fds[0]);
      close(fds[1]);
    } else if (std::freopen("/dev/null", "w", stderr) == nullptr) {
      // stderr stays noisy; the verdict is unaffected.
    }
    body();
    std::_Exit(0);
  }
  if (message != nullptr) {
    // Drain to EOF before reaping: the child's death closes the write
    // end, so this cannot block forever.
    close(fds[1]);
    message->clear();
    char buffer[4096];
    ssize_t got = 0;
    while ((got = read(fds[0], buffer, sizeof buffer)) > 0) {
      message->append(buffer, static_cast<std::size_t>(got));
    }
    close(fds[0]);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT;
}

int run_all_tests() {
  int failed_tests = 0;
  for (const TestCase& test : registry()) {
    const int before = failure_count;
    std::cout << "[ RUN  ] " << test.name << '\n';
    test.body();
    if (failure_count == before) {
      std::cout << "[  OK  ] " << test.name << '\n';
    } else {
      std::cout << "[ FAIL ] " << test.name << '\n';
      ++failed_tests;
    }
  }
  std::cout << registry().size() - static_cast<std::size_t>(failed_tests)
            << " / " << registry().size() << " tests passed\n";
  return failed_tests == 0 ? 0 : 1;
}

}  // namespace pops::testing

int main() { return pops::testing::run_all_tests(); }
