#include "tests/testing.h"

namespace pops::testing {

std::vector<TestCase>& registry() {
  static std::vector<TestCase> tests;
  return tests;
}

namespace {
int failure_count = 0;
}  // namespace

bool register_test(const std::string& name, std::function<void()> body) {
  registry().push_back(TestCase{name, std::move(body)});
  return true;
}

void report_failure(const std::string& file, int line,
                    const std::string& message) {
  ++failure_count;
  std::cerr << "  FAILED " << file << ":" << line << ": " << message
            << '\n';
}

int run_all_tests() {
  int failed_tests = 0;
  for (const TestCase& test : registry()) {
    const int before = failure_count;
    std::cout << "[ RUN  ] " << test.name << '\n';
    test.body();
    if (failure_count == before) {
      std::cout << "[  OK  ] " << test.name << '\n';
    } else {
      std::cout << "[ FAIL ] " << test.name << '\n';
      ++failed_tests;
    }
  }
  std::cout << registry().size() - static_cast<std::size_t>(failed_tests)
            << " / " << registry().size() << " tests passed\n";
  return failed_tests == 0 ? 0 : 1;
}

}  // namespace pops::testing

int main() { return pops::testing::run_all_tests(); }
