// Tiny self-contained test framework (no external dependency, so the
// tier-1 suite builds hermetically everywhere).
//
//   POPS_TEST(SuiteAndName) { EXPECT_EQ(2 + 2, 4); }
//
// Each test binary links testing_main.cc, which runs every registered
// test and exits non-zero when any expectation failed.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pops::testing {

struct TestCase {
  std::string name;
  std::function<void()> body;
};

std::vector<TestCase>& registry();
bool register_test(const std::string& name, std::function<void()> body);
void report_failure(const std::string& file, int line,
                    const std::string& message);
int run_all_tests();

/// Runs `body` in a forked child with stderr silenced; true iff the
/// child died by SIGABRT (i.e. a POPS_CHECK fired). Used by
/// EXPECT_ABORTS to cover hard-invariant negative paths without
/// killing the test binary.
bool dies_by_abort(const std::function<void()>& body);

/// As above, but captures the child's stderr (the abort diagnostic)
/// into *message instead of discarding it, so EXPECT_ABORTS_WITH can
/// assert *which* check fired. *message is filled on every outcome —
/// on a missed abort it holds whatever the child printed, which the
/// failure report shows.
bool dies_by_abort(const std::function<void()>& body,
                   std::string* message);

}  // namespace pops::testing

#define POPS_TEST(name)                                              \
  static void pops_test_##name();                                    \
  static const bool pops_test_registered_##name =                    \
      ::pops::testing::register_test(#name, pops_test_##name);       \
  static void pops_test_##name()

#define EXPECT_TRUE(condition)                                       \
  do {                                                               \
    if (!(condition)) {                                              \
      ::pops::testing::report_failure(__FILE__, __LINE__,            \
                                      "expected true: " #condition); \
    }                                                                \
  } while (false)

#define EXPECT_FALSE(condition)                                       \
  do {                                                                \
    if (condition) {                                                  \
      ::pops::testing::report_failure(__FILE__, __LINE__,             \
                                      "expected false: " #condition); \
    }                                                                 \
  } while (false)

#define EXPECT_EQ(a, b)                                              \
  do {                                                               \
    const auto& expect_eq_a = (a);                                   \
    const auto& expect_eq_b = (b);                                   \
    if (!(expect_eq_a == expect_eq_b)) {                             \
      std::ostringstream expect_eq_out;                              \
      expect_eq_out << "expected " #a " == " #b " but got "          \
                    << expect_eq_a << " vs " << expect_eq_b;         \
      ::pops::testing::report_failure(__FILE__, __LINE__,            \
                                      expect_eq_out.str());          \
    }                                                                \
  } while (false)

#define EXPECT_NE(a, b)                                              \
  do {                                                               \
    if ((a) == (b)) {                                                \
      ::pops::testing::report_failure(__FILE__, __LINE__,            \
                                      "expected " #a " != " #b);     \
    }                                                                \
  } while (false)

#define EXPECT_ABORTS(statement)                                     \
  do {                                                               \
    if (!::pops::testing::dies_by_abort([&] { statement; })) {       \
      ::pops::testing::report_failure(                               \
          __FILE__, __LINE__,                                        \
          "expected POPS_CHECK abort: " #statement);                 \
    }                                                                \
  } while (false)

/// Like EXPECT_ABORTS, but additionally requires the abort diagnostic
/// (the child's stderr) to contain `substring` — so a negative test
/// pins down which contract fired, not merely that something did.
#define EXPECT_ABORTS_WITH(statement, substring)                     \
  do {                                                               \
    std::string expect_aborts_message;                               \
    const bool expect_aborts_died = ::pops::testing::dies_by_abort(  \
        [&] { statement; }, &expect_aborts_message);                 \
    if (!expect_aborts_died) {                                       \
      ::pops::testing::report_failure(                               \
          __FILE__, __LINE__,                                        \
          "expected POPS_CHECK abort: " #statement);                 \
    } else if (expect_aborts_message.find(substring) ==              \
               std::string::npos) {                                  \
      ::pops::testing::report_failure(                               \
          __FILE__, __LINE__,                                        \
          std::string("abort message missing \"") + (substring) +    \
              "\"; child stderr was: " + expect_aborts_message);     \
    }                                                                \
  } while (false)
