// Satellite: the traffic-pattern generators produce valid,
// deterministic permutations that the Theorem 2 engine routes at the
// bound, and one_to_all is an accepted optical multicast.
#include "pops/patterns.h"
#include "routing/engine.h"
#include "routing/verify.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(PatternNames) {
  EXPECT_EQ(to_string(TrafficPattern::kIdentity), "identity");
  EXPECT_EQ(to_string(TrafficPattern::kGroupReversal), "group-reversal");
  EXPECT_EQ(to_string(TrafficPattern::kPerfectShuffle),
            "perfect-shuffle");
  EXPECT_EQ(to_string(TrafficPattern::kTranspose), "transpose");
  EXPECT_EQ(to_string(TrafficPattern::kSeededRandom), "seeded-random");
}

POPS_TEST(PatternsAreWellFormedPermutations) {
  // The Permutation constructor validates bijectivity, so building
  // every pattern on every topology (square, wide, tall, odd n) is
  // already a structural test.
  for (const auto& [d, g] :
       {std::pair{1, 1}, {1, 8}, {8, 1}, {3, 3}, {4, 6}, {6, 4}, {5, 3}}) {
    const Topology topo(d, g);
    for (const auto pattern : kAllTrafficPatterns) {
      const Permutation pi = make_pattern(topo, pattern, 7);
      EXPECT_EQ(pi.size(), topo.processor_count());
    }
  }
}

POPS_TEST(PatternStructure) {
  const Topology topo(4, 4);
  EXPECT_TRUE(
      make_pattern(topo, TrafficPattern::kIdentity).is_identity());

  // Group reversal: same in-group index, mirrored group; an involution.
  const Permutation reversal =
      make_pattern(topo, TrafficPattern::kGroupReversal);
  EXPECT_EQ(reversal(0), 12);
  EXPECT_EQ(reversal(13), 1);
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(reversal(reversal(p)), p);
    EXPECT_EQ(topo.index_in_group(reversal(p)), topo.index_in_group(p));
  }

  // Transpose of the square grid is an involution.
  const Permutation transpose =
      make_pattern(topo, TrafficPattern::kTranspose);
  EXPECT_EQ(transpose(1), 4);  // (group 0, index 1) -> (group 1, index 0)
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(transpose(transpose(p)), p);
  }

  // Out-shuffle: first half spreads to even slots, second to odd.
  const Permutation shuffle =
      make_pattern(topo, TrafficPattern::kPerfectShuffle);
  EXPECT_EQ(shuffle(0), 0);
  EXPECT_EQ(shuffle(1), 2);
  EXPECT_EQ(shuffle(8), 1);
  EXPECT_EQ(shuffle(15), 15);
}

POPS_TEST(SeededRandomIsDeterministicPerSeed) {
  const Topology topo(8, 4);
  const Permutation a =
      make_pattern(topo, TrafficPattern::kSeededRandom, 5);
  const Permutation b =
      make_pattern(topo, TrafficPattern::kSeededRandom, 5);
  const Permutation c =
      make_pattern(topo, TrafficPattern::kSeededRandom, 6);
  EXPECT_TRUE(a.images() == b.images());
  EXPECT_FALSE(a.images() == c.images());
}

POPS_TEST(EveryPatternRoutesAtTheTheorem2Bound) {
  for (const auto& [d, g] : {std::pair{2, 2}, {4, 4}, {8, 3}, {3, 8}}) {
    const Topology topo(d, g);
    RoutingEngine engine(topo);
    for (const auto pattern : kAllTrafficPatterns) {
      const Permutation pi = make_pattern(topo, pattern, 11);
      const FlatSchedule& flat = engine.route_permutation(pi);
      EXPECT_EQ(flat.slot_count(), theorem2_slots(topo));
      EXPECT_TRUE(verify_schedule(topo, pi, flat).ok);
    }
  }
}

POPS_TEST(ArrivalGeneratorsAreDeterministicPerSeed) {
  // The serving benches depend on byte-identical demand streams: the
  // same (topology, config) pair must replay exactly, and a different
  // seed must diverge.
  const Topology topo(4, 4);
  for (const ArrivalProcess process : kAllArrivalProcesses) {
    ArrivalConfig config;
    config.process = process;
    config.seed = 42;
    ArrivalGenerator a(topo, config);
    ArrivalGenerator b(topo, config);
    config.seed = 43;
    ArrivalGenerator other(topo, config);
    bool diverged = false;
    for (int k = 0; k < 500; ++k) {
      const Demand demand = a.next();
      EXPECT_TRUE(demand == b.next());
      if (!(demand == other.next())) diverged = true;
    }
    EXPECT_TRUE(diverged);
  }
}

POPS_TEST(ArrivalStreamsAreWellFormed) {
  for (const auto& [d, g] : {std::pair{1, 1}, {1, 8}, {4, 4}, {3, 5}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    for (const ArrivalProcess process : kAllArrivalProcesses) {
      ArrivalConfig config;
      config.process = process;
      config.seed = 9;
      config.payload_flits = 3;
      ArrivalGenerator generator(topo, config);
      std::uint64_t previous_tick = 0;
      for (int k = 0; k < 300; ++k) {
        const Demand demand = generator.next();
        EXPECT_TRUE(demand.source >= 0 && demand.source < n);
        EXPECT_TRUE(demand.destination >= 0 && demand.destination < n);
        if (n > 1) EXPECT_NE(demand.source, demand.destination);
        EXPECT_EQ(demand.payload, 3);
        EXPECT_TRUE(demand.arrival_tick >= previous_tick);
        previous_tick = demand.arrival_tick;
      }
    }
  }
}

POPS_TEST(ArrivalProcessNamesAndValidation) {
  EXPECT_EQ(to_string(ArrivalProcess::kUniform), "uniform");
  EXPECT_EQ(to_string(ArrivalProcess::kZipfHotGroup), "zipf-hot-group");
  EXPECT_EQ(to_string(ArrivalProcess::kBurstyOnOff), "bursty-on-off");
  ArrivalConfig config;
  config.mean_gap_ticks = -1;
  EXPECT_ABORTS(ArrivalGenerator(Topology(2, 2), config));
}

POPS_TEST(ZipfHotGroupSkewsTowardGroupZero) {
  // Group 0 is the hottest destination group by construction; over a
  // long stream it must receive strictly more demands than the last
  // group.
  const Topology topo(4, 8);
  ArrivalConfig config;
  config.process = ArrivalProcess::kZipfHotGroup;
  config.seed = 12;
  config.zipf_exponent = 1.2;
  ArrivalGenerator generator(topo, config);
  int hot = 0;
  int cold = 0;
  for (int k = 0; k < 4000; ++k) {
    const int group = topo.group_of(generator.next().destination);
    if (group == 0) ++hot;
    if (group == topo.group_count() - 1) ++cold;
  }
  EXPECT_TRUE(hot > 2 * cold);
}

POPS_TEST(OneToAllIsAnAcceptedMulticast) {
  const Topology topo(3, 3);
  Network net(topo);
  net.load_packet(Packet{-1, 4, -1, 1, 0});
  const SlotPlan slot = one_to_all(topo, 4);
  EXPECT_EQ(slot.transmissions.size(),
            as_size(topo.processor_count()));
  EXPECT_TRUE(net.execute_slot(slot));
  EXPECT_TRUE(net.ok());
  for (int p = 0; p < topo.processor_count(); ++p) {
    EXPECT_EQ(net.buffer(p).size(), std::size_t{1});
  }
  EXPECT_ABORTS(one_to_all(topo, topo.processor_count()));
}

}  // namespace
}  // namespace pops
