// Satellite: the traffic-pattern generators produce valid,
// deterministic permutations that the Theorem 2 engine routes at the
// bound, and one_to_all is an accepted optical multicast.
#include "pops/patterns.h"
#include "routing/engine.h"
#include "routing/verify.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(PatternNames) {
  EXPECT_EQ(to_string(TrafficPattern::kIdentity), "identity");
  EXPECT_EQ(to_string(TrafficPattern::kGroupReversal), "group-reversal");
  EXPECT_EQ(to_string(TrafficPattern::kPerfectShuffle),
            "perfect-shuffle");
  EXPECT_EQ(to_string(TrafficPattern::kTranspose), "transpose");
  EXPECT_EQ(to_string(TrafficPattern::kSeededRandom), "seeded-random");
}

POPS_TEST(PatternsAreWellFormedPermutations) {
  // The Permutation constructor validates bijectivity, so building
  // every pattern on every topology (square, wide, tall, odd n) is
  // already a structural test.
  for (const auto& [d, g] :
       {std::pair{1, 1}, {1, 8}, {8, 1}, {3, 3}, {4, 6}, {6, 4}, {5, 3}}) {
    const Topology topo(d, g);
    for (const auto pattern : kAllTrafficPatterns) {
      const Permutation pi = make_pattern(topo, pattern, 7);
      EXPECT_EQ(pi.size(), topo.processor_count());
    }
  }
}

POPS_TEST(PatternStructure) {
  const Topology topo(4, 4);
  EXPECT_TRUE(
      make_pattern(topo, TrafficPattern::kIdentity).is_identity());

  // Group reversal: same in-group index, mirrored group; an involution.
  const Permutation reversal =
      make_pattern(topo, TrafficPattern::kGroupReversal);
  EXPECT_EQ(reversal(0), 12);
  EXPECT_EQ(reversal(13), 1);
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(reversal(reversal(p)), p);
    EXPECT_EQ(topo.index_in_group(reversal(p)), topo.index_in_group(p));
  }

  // Transpose of the square grid is an involution.
  const Permutation transpose =
      make_pattern(topo, TrafficPattern::kTranspose);
  EXPECT_EQ(transpose(1), 4);  // (group 0, index 1) -> (group 1, index 0)
  for (int p = 0; p < 16; ++p) {
    EXPECT_EQ(transpose(transpose(p)), p);
  }

  // Out-shuffle: first half spreads to even slots, second to odd.
  const Permutation shuffle =
      make_pattern(topo, TrafficPattern::kPerfectShuffle);
  EXPECT_EQ(shuffle(0), 0);
  EXPECT_EQ(shuffle(1), 2);
  EXPECT_EQ(shuffle(8), 1);
  EXPECT_EQ(shuffle(15), 15);
}

POPS_TEST(SeededRandomIsDeterministicPerSeed) {
  const Topology topo(8, 4);
  const Permutation a =
      make_pattern(topo, TrafficPattern::kSeededRandom, 5);
  const Permutation b =
      make_pattern(topo, TrafficPattern::kSeededRandom, 5);
  const Permutation c =
      make_pattern(topo, TrafficPattern::kSeededRandom, 6);
  EXPECT_TRUE(a.images() == b.images());
  EXPECT_FALSE(a.images() == c.images());
}

POPS_TEST(EveryPatternRoutesAtTheTheorem2Bound) {
  for (const auto& [d, g] : {std::pair{2, 2}, {4, 4}, {8, 3}, {3, 8}}) {
    const Topology topo(d, g);
    RoutingEngine engine(topo);
    for (const auto pattern : kAllTrafficPatterns) {
      const Permutation pi = make_pattern(topo, pattern, 11);
      const FlatSchedule& flat = engine.route_permutation(pi);
      EXPECT_EQ(flat.slot_count(), theorem2_slots(topo));
      EXPECT_TRUE(verify_schedule(topo, pi, flat).ok);
    }
  }
}

POPS_TEST(OneToAllIsAnAcceptedMulticast) {
  const Topology topo(3, 3);
  Network net(topo);
  net.load_packet(Packet{-1, 4, -1, 1, 0});
  const SlotPlan slot = one_to_all(topo, 4);
  EXPECT_EQ(slot.transmissions.size(),
            as_size(topo.processor_count()));
  EXPECT_TRUE(net.execute_slot(slot));
  EXPECT_TRUE(net.ok());
  for (int p = 0; p < topo.processor_count(); ++p) {
    EXPECT_EQ(net.buffer(p).size(), std::size_t{1});
  }
  EXPECT_ABORTS(one_to_all(topo, topo.processor_count()));
}

}  // namespace
}  // namespace pops
