// Tentpole coverage: the RoutingEngine must (a) produce schedules that
// are slot-for-slot verified across the (d, g) grid for every
// strategy, (b) agree with the legacy wrapper API, and (c) perform no
// steady-state heap allocation — asserted by routing repeatedly after
// a warm-up call and demanding that no engine-owned scratch arena ever
// grows again.
#include "perm/families.h"
#include "pops/patterns.h"
#include "routing/engine.h"
#include "routing/portfolio.h"
#include "routing/verify.h"
#include "support/alloc_guard.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(EngineRoutesTheGridAtTheBound) {
  Rng rng(71);
  for (const int d : {1, 2, 3, 4, 8, 9}) {
    for (const int g : {1, 2, 3, 5, 8}) {
      const Topology topo(d, g);
      const int n = topo.processor_count();
      RoutingEngine engine(topo);
      std::vector<Permutation> cases;
      cases.push_back(Permutation::identity(n));
      cases.push_back(vector_reversal(n));
      cases.push_back(group_rotation(d, g, g > 1 ? 1 : 0));
      cases.push_back(Permutation::random(n, rng));
      for (const Permutation& pi : cases) {
        const FlatSchedule& flat = engine.route_permutation(pi);
        EXPECT_EQ(flat.slot_count(), theorem2_slots(topo));
        const VerificationResult vr = verify_schedule(topo, pi, flat);
        EXPECT_TRUE(vr.ok);
        if (!vr.ok) {
          EXPECT_EQ(vr.failure, "");  // surface the reason in the log
        }
      }
    }
  }
}

POPS_TEST(EngineMatchesTheWrapperApi) {
  Rng rng(72);
  const Topology topo(4, 3);
  const Permutation pi = Permutation::random(12, rng);
  RoutingEngine engine(topo);
  const FlatSchedule& flat = engine.route_permutation(pi);
  // The wrapper is deprecated; this test is exactly the shim contract
  // the deprecation message promises, so the warning is suppressed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const RoutePlan plan = route_permutation(topo, pi);
#pragma GCC diagnostic pop
  EXPECT_EQ(plan.slot_count(), flat.slot_count());
  EXPECT_EQ(plan.intermediate_of.size(),
            engine.intermediate_of().size());
  for (int s = 0; s < flat.slot_count(); ++s) {
    const Span<const Transmission> slot = flat.slot(s);
    EXPECT_EQ(plan.slots[as_size(s)].transmissions.size(), slot.size());
    for (std::size_t i = 0; i < slot.size(); ++i) {
      const Transmission& a = plan.slots[as_size(s)].transmissions[i];
      EXPECT_EQ(a.source, slot[i].source);
      EXPECT_EQ(a.destination, slot[i].destination);
      EXPECT_EQ(a.packet, slot[i].packet);
    }
  }
}

POPS_TEST(EngineDirectAndBestAgreeWithWrappers) {
  Rng rng(73);
  for (const auto& [d, g] : {std::pair{4, 4}, {8, 2}, {2, 8}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    RoutingEngine engine(topo);
    for (const Permutation& pi :
         {Permutation::random(n, rng), vector_reversal(n),
          group_rotation(d, g, 1)}) {
      const FlatSchedule& direct = engine.route_direct(pi);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      const DirectPlan direct_plan = route_direct(topo, pi);
#pragma GCC diagnostic pop
      EXPECT_EQ(direct.slot_count(), direct_plan.slot_count());
      EXPECT_EQ(engine.direct_max_demand(), direct_plan.max_demand);
      EXPECT_TRUE(verify_schedule(topo, pi, direct).ok);

      const FlatSchedule& best = engine.route_best(pi);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      const PortfolioPlan best_plan = best_route(topo, pi);
#pragma GCC diagnostic pop
      EXPECT_EQ(best.slot_count(), best_plan.slot_count());
      EXPECT_TRUE(engine.best_strategy() == best_plan.strategy);
      EXPECT_EQ(engine.direct_slot_count(),
                best_plan.direct_slot_count);
      EXPECT_EQ(engine.theorem2_slot_count(),
                best_plan.theorem2_slot_count);
      EXPECT_TRUE(verify_schedule(topo, pi, best).ok);
    }
  }
}

POPS_TEST(EngineSteadyStateNeverGrowsScratch) {
  // The zero-allocation contract, checked both ways: equal scratch
  // footprints before and after every call (no arena ever reallocates)
  // AND — in POPS_ALLOC_GUARD builds — a ScopedAllocationBan over the
  // whole steady loop, which additionally aborts on transient
  // allocate-free pairs that a capacity diff cannot see. Permutations
  // are generated before the ban: building a Permutation allocates by
  // design.
  Rng rng(74);
  for (const auto& [d, g] :
       {std::pair{1, 8}, {4, 4}, {8, 3}, {3, 8}, {16, 16}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    RoutingEngine engine(topo);
    // Warm-up: one call per strategy (route_best covers both builders,
    // plus the verification Network).
    engine.route_best(Permutation::random(n, rng));
    const ScratchFootprint warm = engine.scratch_footprint();
    EXPECT_TRUE(warm.units > 0);
    std::vector<Permutation> trials;
    for (int trial = 0; trial < 8; ++trial) {
      trials.push_back(trial % 2 == 0
                           ? Permutation::random(n, rng)
                           : group_rotation(d, g, trial % g));
    }
    ScopedAllocationBan ban("test: engine steady state");
    for (const Permutation& pi : trials) {
      // EXPECT_EQ streams both footprints on mismatch (the
      // ScratchFootprint operator<<), so a regression names the sizes.
      engine.route_permutation(pi);
      EXPECT_EQ(engine.scratch_footprint(), warm);
      engine.route_direct(pi);
      EXPECT_EQ(engine.scratch_footprint(), warm);
      engine.route_best(pi);
      EXPECT_EQ(engine.scratch_footprint(), warm);
    }
  }
}

POPS_TEST(EngineIntermediatesAreConsistent) {
  Rng rng(75);
  const Topology topo(4, 3);
  const Permutation pi = Permutation::random(12, rng);
  RoutingEngine engine(topo);
  const FlatSchedule& flat = engine.route_permutation(pi);
  const Span<const int> mids = engine.intermediate_of();
  EXPECT_EQ(mids.size(), std::size_t{12});
  for (std::size_t s = 0; s < mids.size(); ++s) {
    EXPECT_TRUE(mids[s] >= 0 && mids[s] < topo.processor_count());
  }
  // Within one batch (pair of slots), intermediates are distinct
  // processors and match the distribute destinations.
  for (int slot = 0; slot + 1 < flat.slot_count(); slot += 2) {
    std::vector<bool> used(as_size(topo.processor_count()), false);
    for (const Transmission& t : flat.slot(slot)) {
      EXPECT_FALSE(used[as_size(t.destination)]);
      used[as_size(t.destination)] = true;
      EXPECT_EQ(mids[as_size(t.packet)], t.destination);
    }
  }
}

}  // namespace
}  // namespace pops
