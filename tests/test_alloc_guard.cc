// Tests for support/alloc_guard: counters, ban/allow scoping, and the
// seeded-violation negative paths proving the ban is live — a vector
// growing past its capacity inside a ban, a cold engine routed inside
// a ban, and a TrafficServer whose arena reserves were deliberately
// shrunk (ServerConfig::debug_shrink_reserves) tripping the window
// ban. The binary builds in every configuration; without
// POPS_ALLOC_GUARD it instead asserts that the no-op guard stays
// inert.
#include "support/alloc_guard.h"

#include <vector>

#include "pops/patterns.h"
#include "routing/engine.h"
#include "serve/traffic_server.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

#if POPS_ALLOC_GUARD

POPS_TEST(CountersSeeAllocationsAndFrees) {
  const AllocationCounter before = thread_allocation_counter();
  {
    std::vector<long long> block(1024);
    EXPECT_EQ(block.size(), std::size_t{1024});
  }
  const AllocationCounter after = thread_allocation_counter();
  EXPECT_TRUE(after.allocations > before.allocations);
  EXPECT_TRUE(after.deallocations > before.deallocations);
  EXPECT_TRUE(after.bytes_allocated >=
              before.bytes_allocated +
                  static_cast<long long>(1024 * sizeof(long long)));
}

POPS_TEST(BanWithinReservedCapacityIsClean) {
  std::vector<int> values;
  values.reserve(64);
  ScopedAllocationBan ban("test: push within capacity");
  EXPECT_TRUE(allocation_ban_active());
  for (int i = 0; i < 64; ++i) values.push_back(i);
  EXPECT_EQ(values.size(), std::size_t{64});
}

POPS_TEST(BanAbortsOnVectorGrowthPastCapacity) {
  EXPECT_ABORTS_WITH(
      {
        std::vector<int> values;
        values.reserve(4);
        ScopedAllocationBan ban("test: growth past capacity");
        for (int i = 0; i < 64; ++i) values.push_back(i);
      },
      "POPS_ALLOC_GUARD");
  EXPECT_ABORTS_WITH(
      {
        std::vector<int> values;
        values.reserve(4);
        ScopedAllocationBan ban("test: growth past capacity");
        for (int i = 0; i < 64; ++i) values.push_back(i);
      },
      "banned scope 'test: growth past capacity'");
}

POPS_TEST(AllowScopeLiftsTheBan) {
  ScopedAllocationBan ban("test: outer ban");
  ScopedAllocationAllow allow;
  EXPECT_FALSE(allocation_ban_active());
  std::vector<int> survives(256);
  EXPECT_EQ(survives.size(), std::size_t{256});
}

POPS_TEST(DisarmedBanIsInert) {
  ScopedAllocationBan ban("test: disarmed", /*armed=*/false);
  EXPECT_FALSE(allocation_ban_active());
  std::vector<int> survives(256);
  EXPECT_EQ(survives.size(), std::size_t{256});
}

POPS_TEST(InnermostArmedScopeIsReported) {
  EXPECT_ABORTS_WITH(
      {
        ScopedAllocationBan outer("test: outer scope");
        ScopedAllocationBan inner("test: inner scope");
        std::vector<int> boom(16);
        (void)boom;
      },
      "banned scope 'test: inner scope'");
}

POPS_TEST(ColdEngineInsideBanAborts) {
  // First-call routing sizes the colorer scratch: running it under an
  // external ban must abort. (The engine's own entry-point ban stays
  // disarmed until warm, and a disarmed ban never weakens an armed
  // enclosing one.)
  EXPECT_ABORTS_WITH(
      {
        const Topology topo(4, 4);
        RoutingEngine engine(topo);
        Rng rng(7);
        const Permutation pi =
            Permutation::random(topo.processor_count(), rng);
        ScopedAllocationBan ban("test: cold engine route");
        engine.route_permutation(pi);
      },
      "banned scope 'test: cold engine route'");
}

POPS_TEST(WarmEngineInsideBanIsClean) {
  const Topology topo(4, 4);
  RoutingEngine engine(topo);
  Rng rng(7);
  const Permutation warm_up =
      Permutation::random(topo.processor_count(), rng);
  engine.route_best(warm_up);  // warms all three strategies + verifier
  const Permutation steady =
      Permutation::random(topo.processor_count(), rng);
  ScopedAllocationBan ban("test: warm engine route");
  const FlatSchedule& schedule = engine.route_best(steady);
  EXPECT_TRUE(schedule.slot_count() > 0);
}

POPS_TEST(ColdEngineInsideBanAbortsForEveryColoringBackend) {
  // Same seeded violation as above, but routed through each
  // divide-and-conquer backend: the first call must size the flat
  // D&C scratch (padded edge array, CSR view, kernel arrays), so a
  // cold route under an external ban aborts for every backend.
  for (const auto algorithm : kAllColoringAlgorithms) {
    EXPECT_ABORTS_WITH(
        {
          const Topology topo(4, 4);
          RouterOptions options;
          options.coloring = algorithm;
          RoutingEngine engine(topo, options);
          Rng rng(7);
          const Permutation pi =
              Permutation::random(topo.processor_count(), rng);
          ScopedAllocationBan ban("test: cold backend route");
          engine.route_permutation(pi);
        },
        "banned scope 'test: cold backend route'");
  }
}

POPS_TEST(WarmEngineInsideBanIsCleanForEveryColoringBackend) {
  // The positive control: every coloring backend is zero-alloc
  // eligible since the flat kernel rewrite, so a warm engine routes
  // under a live external ban without tripping it — including the
  // engine's own (now armed) entry-point ban underneath.
  for (const auto algorithm : kAllColoringAlgorithms) {
    const Topology topo(4, 4);
    RouterOptions options;
    options.coloring = algorithm;
    RoutingEngine engine(topo, options);
    EXPECT_TRUE(engine.zero_alloc_eligible());
    Rng rng(7);
    const Permutation warm_up =
        Permutation::random(topo.processor_count(), rng);
    engine.route_best(warm_up);  // warms all strategies + verifier
    const Permutation steady =
        Permutation::random(topo.processor_count(), rng);
    ScopedAllocationBan ban("test: warm backend route");
    const FlatSchedule& schedule = engine.route_best(steady);
    EXPECT_TRUE(schedule.slot_count() > 0);
  }
}

POPS_TEST(ShrunkServerReservesTripTheWindowBan) {
  // debug_shrink_reserves skips the constructor's arena reserves and
  // priming but still arms the steady-state ban: the first window's
  // scratch sizing must abort inside the banned window scope.
  EXPECT_ABORTS_WITH(
      {
        const Topology topo(4, 4);
        ServerConfig config;
        config.debug_shrink_reserves = true;
        TrafficServer server(topo, config);
        ArrivalConfig arrivals;
        arrivals.seed = 3;
        ArrivalGenerator generator(topo, arrivals);
        for (int i = 0; i < 4096; ++i) server.submit(generator.next());
        server.flush();
      },
      "banned scope 'TrafficServer::execute_window'");
}

POPS_TEST(ProperlyReservedServerSoaksCleanUnderGuard) {
  // The positive control for the test above: identical traffic, normal
  // construction — hundreds of windows, every one inside the armed
  // ban, no abort.
  const Topology topo(4, 4);
  TrafficServer server(topo);
  ArrivalConfig arrivals;
  arrivals.seed = 3;
  ArrivalGenerator generator(topo, arrivals);
  for (int i = 0; i < 4096; ++i) server.submit(generator.next());
  server.flush();
  EXPECT_TRUE(server.stats().windows_routed > 100);
  EXPECT_EQ(server.stats().slots_executed, server.stats().budget_slots);
}

#else  // !POPS_ALLOC_GUARD

POPS_TEST(DisabledGuardIsInert) {
  ScopedAllocationBan ban("test: no-op build");
  ScopedAllocationAllow allow;
  std::vector<int> survives(256);
  EXPECT_EQ(survives.size(), std::size_t{256});
  EXPECT_FALSE(allocation_ban_active());
  const AllocationCounter counter = thread_allocation_counter();
  EXPECT_EQ(counter.allocations, 0LL);
  EXPECT_EQ(counter.deallocations, 0LL);
  EXPECT_EQ(counter.bytes_allocated, 0LL);
}

#endif  // POPS_ALLOC_GUARD

}  // namespace
}  // namespace pops
