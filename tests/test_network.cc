#include "perm/families.h"
#include "pops/network.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(TopologyBasics) {
  const Topology topo(3, 4);
  EXPECT_EQ(topo.d(), 3);
  EXPECT_EQ(topo.g(), 4);
  EXPECT_EQ(topo.processor_count(), 12);
  EXPECT_EQ(topo.coupler_count(), 16);
  EXPECT_EQ(topo.group_of(0), 0);
  EXPECT_EQ(topo.group_of(11), 3);
  EXPECT_EQ(topo.index_in_group(7), 1);
  EXPECT_EQ(topo.processor(2, 1), 7);
  EXPECT_EQ(topo.coupler(3, 1), 13);
  EXPECT_EQ(topo.to_string(), "POPS(3,4)");
}

POPS_TEST(CouplerRejectsOutOfRangeGroups) {
  // coupler() is an accessor like any other: out-of-range groups are a
  // caller bug and must trip POPS_CHECK, not silently index a
  // nonexistent coupler.
  const Topology topo(3, 4);
  EXPECT_EQ(topo.coupler(0, 0), 0);
  EXPECT_EQ(topo.coupler(3, 3), 15);
  EXPECT_ABORTS(topo.coupler(-1, 0));
  EXPECT_ABORTS(topo.coupler(0, -1));
  EXPECT_ABORTS(topo.coupler(4, 0));
  EXPECT_ABORTS(topo.coupler(0, 4));
  // Processor ids are not group ids: passing a valid processor id that
  // exceeds the group count must abort too.
  EXPECT_ABORTS(topo.coupler(11, 0));
}

POPS_TEST(LoadPermutationTraffic) {
  const Topology topo(2, 2);
  Network net(topo);
  net.load_permutation_traffic(vector_reversal(4));
  EXPECT_EQ(net.packet_count(), 4);
  EXPECT_FALSE(net.all_delivered());
  EXPECT_EQ(net.buffer(1).size(), std::size_t{1});
  EXPECT_EQ(net.buffer(1)[0].destination, 2);
  EXPECT_EQ(net.buffer(1)[0].hops, 0);
}

POPS_TEST(SingleSlotDelivery) {
  // POPS(1, 4): any permutation routes in one slot.
  const Topology topo(1, 4);
  Network net(topo);
  net.load_permutation_traffic(vector_reversal(4));
  SlotPlan slot;
  for (int p = 0; p < 4; ++p) {
    slot.transmissions.push_back(Transmission{p, 3 - p, p});
  }
  EXPECT_TRUE(net.execute_slot(slot));
  EXPECT_TRUE(net.ok());
  EXPECT_TRUE(net.all_delivered());
  EXPECT_EQ(net.buffer(3)[0].hops, 1);
  EXPECT_EQ(net.stats().slots_executed, 1LL);
  EXPECT_EQ(net.stats().packets_moved, 4LL);
  // All four used couplers are off-diagonal plus... exactly 4 busy.
  EXPECT_EQ(net.stats().coupler_slots_busy, 4LL);
  EXPECT_EQ(net.stats().coupler_slot_capacity, 16LL);
  EXPECT_TRUE(net.stats().average_coupler_utilization() > 0.24);
}

POPS_TEST(MulticastFromOneTransmitter) {
  // One source drives two couplers with the same packet (optical
  // multicast to two groups).
  const Topology topo(2, 2);
  Network net(topo);
  net.load_packet(Packet{7, 0, -1, 1, 0});
  SlotPlan slot;
  slot.transmissions.push_back(Transmission{0, 1, 7});
  slot.transmissions.push_back(Transmission{0, 2, 7});
  EXPECT_TRUE(net.execute_slot(slot));
  EXPECT_EQ(net.buffer(1).size(), std::size_t{1});
  EXPECT_EQ(net.buffer(2).size(), std::size_t{1});
  EXPECT_EQ(net.buffer(0).size(), std::size_t{0});
  EXPECT_EQ(net.packet_count(), 2);
}

POPS_TEST(MulticastAcrossManyCouplersInOneSlot) {
  // Optical multicast at full fan-out: one transmitter drives all g
  // couplers of its source-group column with the same packet in a
  // single slot, and every processor receives a copy.
  const Topology topo(2, 4);
  Network net(topo);
  net.load_packet(Packet{5, 3, -1, 1, 0});
  SlotPlan slot;
  for (int p = 0; p < topo.processor_count(); ++p) {
    slot.transmissions.push_back(Transmission{3, p, 5});
  }
  EXPECT_TRUE(net.execute_slot(slot));
  EXPECT_TRUE(net.ok());
  EXPECT_EQ(net.packet_count(), topo.processor_count());
  for (int p = 0; p < topo.processor_count(); ++p) {
    EXPECT_EQ(net.buffer(p).size(), std::size_t{1});
    EXPECT_EQ(net.buffer(p)[0].id, 5);
    EXPECT_EQ(net.buffer(p)[0].hops, 1);
  }
  // Exactly the g couplers of source group 1 were busy.
  EXPECT_EQ(net.stats().coupler_slots_busy,
            static_cast<long long>(topo.g()));
}

POPS_TEST(RejectsTwoDifferentPacketsFromOneSource) {
  // The dual of multicast: a processor may drive several couplers only
  // with the SAME packet; two different packet ids in one slot violate
  // the one-transmission-per-processor rule. Exercises the flat
  // Span-based execute_slot path directly.
  const Topology topo(2, 2);
  Network net(topo);
  net.load_packet(Packet{0, 0, 2, 1, 0});
  net.load_packet(Packet{1, 0, 1, 1, 0});
  const std::vector<Transmission> transmissions = {
      Transmission{0, 2, 0}, Transmission{0, 1, 1}};
  EXPECT_FALSE(net.execute_slot(Span<const Transmission>(transmissions)));
  EXPECT_TRUE(net.failure().find("two different packets") !=
              std::string::npos);
  // Nothing moved: the slot was rejected atomically.
  EXPECT_EQ(net.buffer(0).size(), std::size_t{2});
}

POPS_TEST(ExecutesFlatSchedules) {
  // The FlatSchedule path is slot-for-slot equivalent to the nested
  // one.
  const Topology topo(1, 4);
  const Permutation pi = vector_reversal(4);
  FlatSchedule schedule;
  schedule.begin_slot();
  for (int p = 0; p < 4; ++p) {
    schedule.push(Transmission{p, 3 - p, p});
  }
  EXPECT_EQ(schedule.slot_count(), 1);
  EXPECT_EQ(schedule.transmission_count(), 4);
  EXPECT_EQ(schedule.transmissions().size(), std::size_t{4});
  EXPECT_EQ(schedule.slot(0)[0].destination, 3);
  Network net(topo);
  net.load_permutation_traffic(pi);
  EXPECT_TRUE(net.execute(schedule));
  EXPECT_TRUE(net.all_delivered());
  EXPECT_EQ(net.stats().packets_moved, 4LL);
}

POPS_TEST(RejectsCouplerOversubscription) {
  const Topology topo(2, 2);
  Network net(topo);
  net.load_permutation_traffic(vector_reversal(4));
  // Packets 0 (0 -> 3) and 1 (1 -> 2) both need coupler c(1, 0).
  SlotPlan slot;
  slot.transmissions.push_back(Transmission{0, 3, 0});
  slot.transmissions.push_back(Transmission{1, 2, 1});
  EXPECT_FALSE(net.execute_slot(slot));
  EXPECT_FALSE(net.ok());
  EXPECT_TRUE(net.failure().find("oversubscribed") != std::string::npos);
  // The failure is sticky and nothing moved.
  EXPECT_EQ(net.buffer(0).size(), std::size_t{1});
  EXPECT_FALSE(net.execute_slot(SlotPlan{}));
}

POPS_TEST(RejectsDoubleSendAndDoubleReceive) {
  const Topology topo(2, 2);
  {
    Network net(topo);
    net.load_packet(Packet{0, 0, 2, 1, 0});
    net.load_packet(Packet{1, 0, 1, 1, 0});
    SlotPlan slot;
    slot.transmissions.push_back(Transmission{0, 2, 0});
    slot.transmissions.push_back(Transmission{0, 1, 1});
    EXPECT_FALSE(net.execute_slot(slot));
    EXPECT_TRUE(net.failure().find("two different packets") !=
                std::string::npos);
  }
  {
    Network net(topo);
    net.load_packet(Packet{0, 0, 3, 1, 0});
    net.load_packet(Packet{1, 2, 3, 1, 0});
    // Sources sit in different groups, so the couplers are distinct and
    // the double-receive at processor 3 is the first violation.
    SlotPlan slot;
    slot.transmissions.push_back(Transmission{0, 3, 0});
    slot.transmissions.push_back(Transmission{2, 3, 1});
    EXPECT_FALSE(net.execute_slot(slot));
    EXPECT_TRUE(net.failure().find("more than one coupler") !=
                std::string::npos);
  }
}

POPS_TEST(RejectsPhantomPacket) {
  const Topology topo(2, 2);
  Network net(topo);
  net.load_permutation_traffic(Permutation::identity(4));
  SlotPlan slot;
  slot.transmissions.push_back(Transmission{0, 1, 99});
  EXPECT_FALSE(net.execute_slot(slot));
  EXPECT_TRUE(net.failure().find("does not hold packet 99") !=
              std::string::npos);
}

POPS_TEST(WithdrawalOrderCarriesNoSemantics) {
  // Withdrawal is a swap-and-pop: sending the front packet moves the
  // row's last packet into its slot. Delivery resolves packets by id,
  // so the permuted buffer order must never be observable.
  const Topology topo(2, 2);
  Network net(topo);
  net.load_packet(Packet{10, 0, 1, 1, 0});
  net.load_packet(Packet{11, 0, 2, 1, 0});
  net.load_packet(Packet{12, 0, 3, 1, 0});
  SlotPlan first;
  first.transmissions.push_back(Transmission{0, 1, 10});
  EXPECT_TRUE(net.execute_slot(first));
  EXPECT_EQ(net.buffer(0).size(), std::size_t{2});
  bool seen11 = false;
  bool seen12 = false;
  for (const Packet& packet : net.buffer(0)) {
    seen11 = seen11 || packet.id == 11;
    seen12 = seen12 || packet.id == 12;
  }
  EXPECT_TRUE(seen11);
  EXPECT_TRUE(seen12);
  SlotPlan second;
  second.transmissions.push_back(Transmission{0, 2, 11});
  EXPECT_TRUE(net.execute_slot(second));
  SlotPlan third;
  third.transmissions.push_back(Transmission{0, 3, 12});
  EXPECT_TRUE(net.execute_slot(third));
  EXPECT_TRUE(net.all_delivered());
  EXPECT_EQ(net.buffer(1)[0].id, 10);
  EXPECT_EQ(net.buffer(2)[0].id, 11);
  EXPECT_EQ(net.buffer(3)[0].id, 12);
}

POPS_TEST(AnyPacketSendRequiresExactlyOnePacket) {
  // The destination == -1 "any" path is only legal when the buffer
  // holds exactly one packet, so it cannot observe buffer order either
  // — together with the lookup-by-id path this makes the swap-and-pop
  // reordering fully unobservable.
  const Topology topo(2, 2);
  {
    Network net(topo);
    net.load_packet(Packet{20, 0, -1, 1, 0});
    net.load_packet(Packet{21, 0, -1, 1, 0});
    SlotPlan slot;
    slot.transmissions.push_back(Transmission{0, 1, -1});
    EXPECT_FALSE(net.execute_slot(slot));
    EXPECT_TRUE(net.failure().find(
                    "asked to send 'any' packet but holds 2") !=
                std::string::npos);
  }
  {
    // After a by-id withdrawal leaves exactly one packet, "any"
    // succeeds on the survivor regardless of where the swap left it.
    Network net(topo);
    net.load_packet(Packet{20, 0, 1, 1, 0});
    net.load_packet(Packet{21, 0, -1, 1, 0});
    SlotPlan first;
    first.transmissions.push_back(Transmission{0, 1, 20});
    EXPECT_TRUE(net.execute_slot(first));
    SlotPlan any;
    any.transmissions.push_back(Transmission{0, 2, -1});
    EXPECT_TRUE(net.execute_slot(any));
    EXPECT_EQ(net.buffer(2).size(), std::size_t{1});
    EXPECT_EQ(net.buffer(2)[0].id, 21);
  }
}

POPS_TEST(RejectsOutOfRangeTransmissionsAtomically) {
  // Range checks are fused into the validation pass; a bad entry after
  // valid ones must still reject the whole slot with nothing moved.
  const Topology topo(2, 2);
  Network net(topo);
  net.load_permutation_traffic(vector_reversal(4));
  SlotPlan slot;
  slot.transmissions.push_back(Transmission{0, 3, 0});
  slot.transmissions.push_back(Transmission{4, 0, 1});
  EXPECT_FALSE(net.execute_slot(slot));
  EXPECT_TRUE(net.failure().find("source processor 4 out of range") !=
              std::string::npos);
  EXPECT_EQ(net.buffer(0).size(), std::size_t{1});

  Network net2(topo);
  net2.load_permutation_traffic(vector_reversal(4));
  SlotPlan bad_destination;
  bad_destination.transmissions.push_back(Transmission{0, -1, 0});
  EXPECT_FALSE(net2.execute_slot(bad_destination));
  EXPECT_TRUE(net2.failure().find(
                  "destination processor -1 out of range") !=
              std::string::npos);
}

POPS_TEST(SlabGrowthPreservesQueuedPackets) {
  // Overflowing one processor's fixed-stride slab region re-strides the
  // whole slab; every other processor's row must move intact.
  const Topology topo(2, 2);
  Network net(topo);
  net.load_packet(Packet{1, 0, 3, 1, 0});
  net.load_packet(Packet{2, 2, 3, 1, 0});
  net.load_packet(Packet{3, 3, 0, 1, 0});
  for (int k = 0; k < 9; ++k) {
    net.load_packet(Packet{10 + k, 1, k % 4, 1, 0});
  }
  EXPECT_EQ(net.packet_count(), 12);
  EXPECT_EQ(net.buffer(0).size(), std::size_t{1});
  EXPECT_EQ(net.buffer(0)[0].id, 1);
  EXPECT_EQ(net.buffer(2).size(), std::size_t{1});
  EXPECT_EQ(net.buffer(2)[0].id, 2);
  EXPECT_EQ(net.buffer(3).size(), std::size_t{1});
  EXPECT_EQ(net.buffer(3)[0].id, 3);
  EXPECT_EQ(net.buffer(1).size(), std::size_t{9});
  bool seen[9] = {};
  for (const Packet& packet : net.buffer(1)) {
    seen[packet.id - 10] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

POPS_TEST(ResetAndReloadClearFailures) {
  const Topology topo(2, 2);
  Network net(topo);
  net.load_permutation_traffic(Permutation::identity(4));
  SlotPlan bad;
  bad.transmissions.push_back(Transmission{0, 1, 99});
  EXPECT_FALSE(net.execute_slot(bad));
  net.load_permutation_traffic(Permutation::identity(4));
  EXPECT_TRUE(net.ok());
  EXPECT_TRUE(net.all_delivered());  // identity: loaded at destination
  net.reset();
  EXPECT_EQ(net.packet_count(), 0);
  EXPECT_EQ(net.stats().slots_executed, 0LL);
}

}  // namespace
}  // namespace pops
