// Direct (no-intermediate) routing and the portfolio, exercised
// through the canonical engine API, plus shim-equivalence checks for
// the deprecated route_direct / best_route free functions.
#include "perm/families.h"
#include "routing/direct_router.h"
#include "routing/engine.h"
#include "routing/portfolio.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

// Transpose traffic on POPS(size, size): (group i, index j) ->
// (group j, index i). Every coupler c(j, i) carries exactly one
// packet, so the direct router must finish in a single slot.
Permutation group_transpose(int size) {
  std::vector<int> images(as_size(size * size));
  for (int p = 0; p < size * size; ++p) {
    const int group = p / size;
    const int index = p % size;
    images[as_size(p)] = index * size + group;
  }
  return Permutation(std::move(images));
}

POPS_TEST(DirectRoutesDemandOneTrafficInOneSlot) {
  for (const int size : {2, 4, 8}) {
    const Topology topo(size, size);
    const Permutation pi = group_transpose(size);
    RoutingEngine engine(topo);
    const FlatSchedule& plan = engine.route(pi, {RouteStrategy::kDirect});
    EXPECT_EQ(engine.direct_max_demand(), 1);
    EXPECT_EQ(plan.slot_count(), 1);
    EXPECT_TRUE(verify_schedule(topo, pi, plan).ok);
  }
}

// Adversarial group-block traffic: all d packets of a group cross one
// coupler, so direct routing degrades to exactly d slots while
// Theorem 2 stays flat at 2 * ceil(d / g) — the paper's worst-case
// separation, machine-checked on both routers.
POPS_TEST(AdversarialTrafficSeparatesDirectFromTheorem2) {
  for (const auto& [d, g] :
       {std::pair{2, 4}, {4, 4}, {8, 2}, {3, 5}, {16, 4}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    RoutingEngine engine(topo);
    const Permutation cases[] = {group_rotation(d, g, 1),
                                 vector_reversal(n)};
    for (const Permutation& pi : cases) {
      const FlatSchedule& direct =
          engine.route(pi, {RouteStrategy::kDirect});
      EXPECT_EQ(engine.direct_max_demand(), d);
      EXPECT_EQ(direct.slot_count(), d);
      EXPECT_TRUE(verify_schedule(topo, pi, direct).ok);

      const FlatSchedule& theorem2 =
          engine.route(pi, {RouteStrategy::kTheorem2});
      EXPECT_EQ(theorem2.slot_count(), theorem2_slots(topo));
      EXPECT_TRUE(verify_schedule(topo, pi, theorem2).ok);
    }
  }
}

POPS_TEST(DirectTakesExactlyMaxDemandSlotsOnRandomTraffic) {
  Rng rng(23);
  for (const auto& [d, g] :
       {std::pair{1, 8}, {4, 4}, {8, 4}, {16, 2}, {6, 7}}) {
    const Topology topo(d, g);
    RoutingEngine engine(topo);
    for (int trial = 0; trial < 5; ++trial) {
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      const FlatSchedule& plan =
          engine.route(pi, {RouteStrategy::kDirect});
      EXPECT_EQ(plan.slot_count(), engine.direct_max_demand());
      // d*g packets over g^2 couplers: some coupler holds >= ceil(d/g).
      EXPECT_TRUE(engine.direct_max_demand() >= (d + g - 1) / g);
      EXPECT_TRUE(verify_schedule(topo, pi, plan).ok);
    }
  }
}

POPS_TEST(PortfolioNeverExceedsEitherCandidate) {
  Rng rng(24);
  for (const auto& [d, g] :
       {std::pair{1, 8}, {2, 16}, {4, 4}, {16, 4}, {16, 2}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    RoutingEngine engine(topo);
    const Permutation cases[] = {Permutation::random(n, rng),
                                 group_rotation(d, g, g > 1 ? 1 : 0),
                                 vector_reversal(n)};
    for (const Permutation& pi : cases) {
      const FlatSchedule& plan = engine.route(pi, {RouteStrategy::kBest});
      EXPECT_EQ(engine.theorem2_slot_count(), theorem2_slots(topo));
      EXPECT_EQ(engine.direct_slot_count(), engine.direct_max_demand());
      const int better =
          engine.direct_slot_count() < engine.theorem2_slot_count()
              ? engine.direct_slot_count()
              : engine.theorem2_slot_count();
      EXPECT_EQ(plan.slot_count(), better);
      EXPECT_TRUE(verify_schedule(topo, pi, plan).ok);
    }
  }
}

POPS_TEST(PortfolioFlipsToTheorem2OnAdversarialTraffic) {
  // POPS(16, 4): Theorem 2 charges 8 slots, group rotation costs
  // direct routing 16 — the portfolio must pick Theorem 2.
  const Topology topo(16, 4);
  RoutingEngine engine(topo);
  const FlatSchedule& adversarial =
      engine.route(group_rotation(16, 4, 1), {RouteStrategy::kBest});
  EXPECT_TRUE(engine.last_strategy() == RouteStrategy::kTheorem2);
  EXPECT_EQ(adversarial.slot_count(), theorem2_slots(topo));

  // Transpose traffic routes directly in one slot < 2; the portfolio
  // must pick direct.
  const Topology square(4, 4);
  RoutingEngine square_engine(square);
  const FlatSchedule& easy =
      square_engine.route(group_transpose(4), {RouteStrategy::kBest});
  EXPECT_TRUE(square_engine.last_strategy() == RouteStrategy::kDirect);
  EXPECT_EQ(easy.slot_count(), 1);
}

// The deprecated one-shot wrappers are documented as shims over the
// engine: their nested plans must match the engine's flat schedules
// transmission for transmission.
POPS_TEST(DeprecatedDirectAndPortfolioShimsMatchEngine) {
  Rng rng(25);
  const Topology topo(8, 4);
  const Permutation pi = Permutation::random(32, rng);
  RoutingEngine engine(topo);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const DirectPlan direct = route_direct(topo, pi);
  const PortfolioPlan best = best_route(topo, pi);
#pragma GCC diagnostic pop

  const FlatSchedule& engine_direct =
      engine.route(pi, {RouteStrategy::kDirect});
  EXPECT_EQ(direct.max_demand, engine.direct_max_demand());
  EXPECT_EQ(direct.slot_count(), engine_direct.slot_count());
  for (int s = 0; s < engine_direct.slot_count(); ++s) {
    const Span<const Transmission> flat = engine_direct.slot(s);
    const std::vector<Transmission>& nested =
        direct.slots[as_size(s)].transmissions;
    EXPECT_EQ(nested.size(), flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(nested[i].source, flat[i].source);
      EXPECT_EQ(nested[i].destination, flat[i].destination);
      EXPECT_EQ(nested[i].packet, flat[i].packet);
    }
  }

  const FlatSchedule& engine_best =
      engine.route(pi, {RouteStrategy::kBest});
  EXPECT_TRUE(best.strategy == engine.last_strategy());
  EXPECT_EQ(best.theorem2_slot_count, engine.theorem2_slot_count());
  EXPECT_EQ(best.direct_slot_count, engine.direct_slot_count());
  EXPECT_EQ(best.slot_count(), engine_best.slot_count());
}

}  // namespace
}  // namespace pops
