#include "perm/families.h"
#include "routing/direct_router.h"
#include "routing/portfolio.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

// Transpose traffic on POPS(size, size): (group i, index j) ->
// (group j, index i). Every coupler c(j, i) carries exactly one
// packet, so the direct router must finish in a single slot.
Permutation group_transpose(int size) {
  std::vector<int> images(as_size(size * size));
  for (int p = 0; p < size * size; ++p) {
    const int group = p / size;
    const int index = p % size;
    images[as_size(p)] = index * size + group;
  }
  return Permutation(std::move(images));
}

POPS_TEST(DirectRoutesDemandOneTrafficInOneSlot) {
  for (const int size : {2, 4, 8}) {
    const Topology topo(size, size);
    const Permutation pi = group_transpose(size);
    const DirectPlan plan = route_direct(topo, pi);
    EXPECT_EQ(plan.max_demand, 1);
    EXPECT_EQ(plan.slot_count(), 1);
    EXPECT_TRUE(verify_schedule(topo, pi, plan.slots).ok);
  }
}

// Adversarial group-block traffic: all d packets of a group cross one
// coupler, so direct routing degrades to exactly d slots while
// Theorem 2 stays flat at 2 * ceil(d / g) — the paper's worst-case
// separation, machine-checked on both routers.
POPS_TEST(AdversarialTrafficSeparatesDirectFromTheorem2) {
  for (const auto& [d, g] :
       {std::pair{2, 4}, {4, 4}, {8, 2}, {3, 5}, {16, 4}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    const Permutation cases[] = {group_rotation(d, g, 1),
                                 vector_reversal(n)};
    for (const Permutation& pi : cases) {
      const DirectPlan direct = route_direct(topo, pi);
      EXPECT_EQ(direct.max_demand, d);
      EXPECT_EQ(direct.slot_count(), d);
      EXPECT_TRUE(verify_schedule(topo, pi, direct.slots).ok);

      const RoutePlan theorem2 = route_permutation(topo, pi);
      EXPECT_EQ(theorem2.slot_count(), theorem2_slots(topo));
      EXPECT_TRUE(verify_schedule(topo, pi, theorem2.slots).ok);
    }
  }
}

POPS_TEST(DirectTakesExactlyMaxDemandSlotsOnRandomTraffic) {
  Rng rng(23);
  for (const auto& [d, g] :
       {std::pair{1, 8}, {4, 4}, {8, 4}, {16, 2}, {6, 7}}) {
    const Topology topo(d, g);
    for (int trial = 0; trial < 5; ++trial) {
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      const DirectPlan plan = route_direct(topo, pi);
      EXPECT_EQ(plan.slot_count(), plan.max_demand);
      // d*g packets over g^2 couplers: some coupler holds >= ceil(d/g).
      EXPECT_TRUE(plan.max_demand >= (d + g - 1) / g);
      EXPECT_TRUE(verify_schedule(topo, pi, plan.slots).ok);
    }
  }
}

POPS_TEST(PortfolioNeverExceedsEitherCandidate) {
  Rng rng(24);
  for (const auto& [d, g] :
       {std::pair{1, 8}, {2, 16}, {4, 4}, {16, 4}, {16, 2}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    const Permutation cases[] = {Permutation::random(n, rng),
                                 group_rotation(d, g, g > 1 ? 1 : 0),
                                 vector_reversal(n)};
    for (const Permutation& pi : cases) {
      const PortfolioPlan plan = best_route(topo, pi);
      EXPECT_EQ(plan.theorem2_slot_count, theorem2_slots(topo));
      EXPECT_EQ(plan.direct_slot_count, route_direct(topo, pi).max_demand);
      const int better = plan.direct_slot_count < plan.theorem2_slot_count
                             ? plan.direct_slot_count
                             : plan.theorem2_slot_count;
      EXPECT_EQ(plan.slot_count(), better);
      EXPECT_TRUE(verify_schedule(topo, pi, plan.slots).ok);
    }
  }
}

POPS_TEST(PortfolioFlipsToTheorem2OnAdversarialTraffic) {
  // POPS(16, 4): Theorem 2 charges 8 slots, group rotation costs
  // direct routing 16 — the portfolio must pick Theorem 2.
  const Topology topo(16, 4);
  const PortfolioPlan adversarial =
      best_route(topo, group_rotation(16, 4, 1));
  EXPECT_TRUE(adversarial.strategy == RouteStrategy::kTheorem2);
  EXPECT_EQ(adversarial.slot_count(), theorem2_slots(topo));

  // Transpose traffic routes directly in one slot < 2; the portfolio
  // must pick direct.
  const Topology square(4, 4);
  const PortfolioPlan easy = best_route(square, group_transpose(4));
  EXPECT_TRUE(easy.strategy == RouteStrategy::kDirect);
  EXPECT_EQ(easy.slot_count(), 1);
}

POPS_TEST(RouteStrategyNames) {
  EXPECT_EQ(to_string(RouteStrategy::kDirect), "direct");
  EXPECT_EQ(to_string(RouteStrategy::kTheorem2), "theorem2");
}

}  // namespace
}  // namespace pops
