#include <sstream>

#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"
#include "support/timer.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(RngIsDeterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(43);
  Rng d(42);
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) {
    all_equal = all_equal && c.next_u64() == d.next_u64();
  }
  EXPECT_FALSE(all_equal);
}

POPS_TEST(RngBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int value = rng.next_below(17);
    EXPECT_TRUE(value >= 0 && value < 17);
    const int ranged = rng.uniform_int(-3, 3);
    EXPECT_TRUE(ranged >= -3 && ranged <= 3);
    const double real = rng.next_double();
    EXPECT_TRUE(real >= 0.0 && real < 1.0);
  }
}

POPS_TEST(RngShufflePermutes) {
  Rng rng(11);
  std::vector<int> values{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(values);
  EXPECT_EQ(values.size(), std::size_t{8});
  std::vector<bool> seen(8, false);
  for (const int v : values) {
    EXPECT_TRUE(v >= 0 && v < 8);
    EXPECT_FALSE(seen[as_size(v)]);
    seen[as_size(v)] = true;
  }
}

POPS_TEST(FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

POPS_TEST(StrCat) {
  EXPECT_EQ(str_cat("POPS(", 3, ",", 3, ")"), "POPS(3,3)");
  EXPECT_EQ(str_cat(), "");
}

POPS_TEST(AsSizeRoundTrips) {
  EXPECT_EQ(as_size(0), std::size_t{0});
  EXPECT_EQ(as_size(41), std::size_t{41});
}

POPS_TEST(TimerAdvances) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  EXPECT_TRUE(timer.nanos() > 0);
  EXPECT_TRUE(timer.seconds() >= 0);
}

POPS_TEST(TablePrintsAlignedColumns) {
  Table table({"name", "value"});
  table.add("alpha", 1);
  table.add(std::string("beta"), format_double(2.5, 1));
  EXPECT_EQ(table.row_count(), 2);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_TRUE(text.find("name") != std::string::npos);
  EXPECT_TRUE(text.find("alpha") != std::string::npos);
  EXPECT_TRUE(text.find("2.5") != std::string::npos);
  EXPECT_TRUE(text.find("----") != std::string::npos);
}

POPS_TEST(TableHandlesRaggedRows) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  table.add_row({"1", "2", "3", "4"});
  std::ostringstream out;
  table.print(out);
  EXPECT_TRUE(out.str().find("only-one") != std::string::npos);
  EXPECT_TRUE(out.str().find("4") != std::string::npos);
}

}  // namespace
}  // namespace pops
