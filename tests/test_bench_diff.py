#!/usr/bin/env python3
"""Unit tests for scripts/bench_diff.py (run by ctest as test_bench_diff).

Canned snapshot JSON covers the regression-gate contract: a slowed
counter fails, an improvement passes, a missing counter is a structural
failure, a brand-new bench passes, thresholds are overridable per
counter, and a host mismatch downgrades numeric regressions when asked.
"""

import importlib.util
import json
import pathlib
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def load_script(name):
    path = REPO_ROOT / "scripts" / name
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_diff = load_script("bench_diff.py")
bench_merge = load_script("bench_merge.py")


def canned_snapshot():
    """A small but realistic merged snapshot (schema 2, small tier)."""
    return {
        "schema": 2,
        "tier": "small",
        "context": {"cpu": "canned-cpu", "library": "canned-lib"},
        "benches": {
            "bench_theorem2_slots": {
                "context": {},
                "benchmarks": [
                    {
                        "name": "BM_EngineRoutePermutation/16/16",
                        "run_type": "iteration",
                        "real_time": 1000.0,
                        "items_per_second": 50000.0,
                        "perms_per_sec": 50000.0,
                    },
                    {
                        "name": "BM_RoutePermutation/16/16",
                        "run_type": "iteration",
                        "real_time": 3000.0,
                        "items_per_second": 20000.0,
                        "perms_per_sec": 20000.0,
                    },
                ],
            },
            "bench_traffic": {
                "context": {},
                "benchmarks": [
                    {
                        "name": "BM_ServeUniform/4/4/4",
                        "run_type": "iteration",
                        "real_time": 800.0,
                        "items_per_second": 90000.0,
                        "demands_per_sec": 90000.0,
                        "delay_p99_ticks": 12.0,  # not a throughput counter
                    },
                ],
            },
        },
    }


def run_diff(baseline, current, *extra_args):
    """Writes both docs to temp files and runs bench_diff.main."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = pathlib.Path(tmp) / "baseline.json"
        cur_path = pathlib.Path(tmp) / "current.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return bench_diff.main([str(base_path), str(cur_path),
                                *extra_args])


class BenchDiffTest(unittest.TestCase):
    def test_identical_snapshots_pass(self):
        snapshot = canned_snapshot()
        self.assertEqual(run_diff(snapshot, snapshot), 0)

    def test_regression_detected(self):
        current = canned_snapshot()
        entry = current["benches"]["bench_theorem2_slots"]["benchmarks"][0]
        entry["items_per_second"] *= 0.7  # 30% slower, > 15% threshold
        entry["perms_per_sec"] *= 0.7
        self.assertEqual(run_diff(canned_snapshot(), current), 1)

    def test_small_noise_within_threshold_passes(self):
        current = canned_snapshot()
        entry = current["benches"]["bench_theorem2_slots"]["benchmarks"][0]
        entry["items_per_second"] *= 0.9  # 10% slower, under 15%
        entry["perms_per_sec"] *= 0.9
        self.assertEqual(run_diff(canned_snapshot(), current), 0)

    def test_improvement_passes(self):
        current = canned_snapshot()
        for bench in current["benches"].values():
            for entry in bench["benchmarks"]:
                for key in list(entry):
                    if bench_diff.is_throughput_counter(key):
                        entry[key] *= 1.5
        self.assertEqual(run_diff(canned_snapshot(), current), 0)

    def test_missing_counter_is_structural_failure(self):
        current = canned_snapshot()
        del current["benches"]["bench_traffic"]["benchmarks"][0][
            "demands_per_sec"]
        self.assertEqual(run_diff(canned_snapshot(), current), 1)

    def test_missing_bench_is_structural_failure(self):
        current = canned_snapshot()
        del current["benches"]["bench_traffic"]
        self.assertEqual(run_diff(canned_snapshot(), current), 1)

    def test_new_bench_added_passes(self):
        current = canned_snapshot()
        current["benches"]["bench_new_subsystem"] = {
            "context": {},
            "benchmarks": [{
                "name": "BM_New/1",
                "run_type": "iteration",
                "real_time": 10.0,
                "items_per_second": 123.0,
            }],
        }
        self.assertEqual(run_diff(canned_snapshot(), current), 0)

    def test_threshold_override_loosens_default(self):
        current = canned_snapshot()
        entry = current["benches"]["bench_theorem2_slots"]["benchmarks"][0]
        entry["items_per_second"] *= 0.8  # 20% slower
        entry["perms_per_sec"] *= 0.8
        self.assertEqual(run_diff(canned_snapshot(), current), 1)
        self.assertEqual(
            run_diff(canned_snapshot(), current, "--threshold", "0.3"), 0)

    def test_per_counter_override(self):
        current = canned_snapshot()
        entry = current["benches"]["bench_traffic"]["benchmarks"][0]
        entry["demands_per_sec"] *= 0.75  # 25% slower on one counter
        args = ("--counter-threshold", "demands_per_sec=0.4")
        # items_per_second of the same entry still regresses under the
        # default threshold, so loosen only the named counter and keep
        # the other one healthy.
        entry["items_per_second"] = 90000.0
        self.assertEqual(run_diff(canned_snapshot(), current), 1)
        self.assertEqual(run_diff(canned_snapshot(), current, *args), 0)

    def test_tier_mismatch_is_an_error(self):
        current = canned_snapshot()
        current["tier"] = "medium"
        self.assertEqual(run_diff(canned_snapshot(), current), 2)

    def test_host_mismatch_warn_downgrades_numeric_regression(self):
        current = canned_snapshot()
        current["context"]["cpu"] = "other-cpu"
        entry = current["benches"]["bench_theorem2_slots"]["benchmarks"][0]
        entry["items_per_second"] *= 0.5
        entry["perms_per_sec"] *= 0.5
        self.assertEqual(run_diff(canned_snapshot(), current), 1)
        self.assertEqual(
            run_diff(canned_snapshot(), current,
                     "--on-host-mismatch", "warn"), 0)
        # Structural failures still fail even with the downgrade.
        del entry["perms_per_sec"]
        self.assertEqual(
            run_diff(canned_snapshot(), current,
                     "--on-host-mismatch", "warn"), 1)


class BenchMergeTest(unittest.TestCase):
    """The merge side of the pipeline: valid output merges, malformed or
    counter-less output is rejected (the bench_smoke.sh fix)."""

    def merge(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            tmp_path = pathlib.Path(tmp)
            json_dir = tmp_path / "json"
            json_dir.mkdir()
            for name, content in files.items():
                (json_dir / name).write_text(content)
            out = tmp_path / "merged.json"
            code = bench_merge.main(["--out", str(out), "--tier", "fresh",
                                     str(json_dir)])
            merged = json.loads(out.read_text()) if out.exists() else None
            return code, merged

    def valid_doc(self):
        return json.dumps({
            "context": {"library": "popsnet-benchmark-shim"},
            "benchmarks": [{
                "name": "BM_X/4/4",
                "real_time": 5.0,
                "items_per_second": 10.0,
            }],
        })

    def test_valid_merge(self):
        code, merged = self.merge({"bench_a.json": self.valid_doc(),
                                   "bench_b.json": self.valid_doc()})
        self.assertEqual(code, 0)
        self.assertEqual(merged["schema"], 2)
        self.assertEqual(merged["tier"], "fresh")
        self.assertEqual(sorted(merged["benches"]), ["bench_a", "bench_b"])
        self.assertEqual(merged["context"]["library"],
                         "popsnet-benchmark-shim")

    def test_malformed_json_rejected(self):
        code, _ = self.merge({"bench_a.json": self.valid_doc(),
                              "bench_b.json": "{not json"})
        self.assertEqual(code, 1)

    def test_empty_benchmarks_rejected(self):
        code, _ = self.merge(
            {"bench_a.json": json.dumps({"benchmarks": []})})
        self.assertEqual(code, 1)

    def test_counterless_entry_rejected(self):
        doc = json.loads(self.valid_doc())
        del doc["benchmarks"][0]["items_per_second"]
        code, _ = self.merge({"bench_a.json": json.dumps(doc)})
        self.assertEqual(code, 1)

    def test_empty_dir_rejected(self):
        code, _ = self.merge({})
        self.assertEqual(code, 1)


if __name__ == "__main__":
    unittest.main()
