// Shared graph generators for the test suite.
#pragma once

#include "graph/random.h"

namespace pops::testing {

using pops::random_regular_multigraph;

/// Test-local alias for the shared generator.
inline BipartiteMultigraph random_regular(int n, int degree, Rng& rng) {
  return random_regular_multigraph(n, degree, rng);
}

}  // namespace pops::testing
