#include "routing/h_relation.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

// The union of h random permutations: every processor sends exactly h
// and receives exactly h packets, so the relation's degree is h with
// certainty (not just w.h.p.).
std::vector<Request> union_of_permutations(const Topology& topo, int h,
                                           Rng& rng) {
  std::vector<Request> requests;
  for (int k = 0; k < h; ++k) {
    const Permutation pi =
        Permutation::random(topo.processor_count(), rng);
    for (int i = 0; i < pi.size(); ++i) {
      requests.push_back(Request{i, pi(i)});
    }
  }
  return requests;
}

POPS_TEST(RoutesUnionOfPermutationsAtTheBudget) {
  Rng rng(31);
  for (const auto& [d, g] :
       {std::pair{1, 8}, {2, 2}, {4, 4}, {8, 4}, {4, 8}}) {
    const Topology topo(d, g);
    for (const int h : {1, 2, 3}) {
      const auto requests = union_of_permutations(topo, h, rng);
      const HRelationPlan plan = route_h_relation(topo, requests);
      EXPECT_EQ(plan.h, h);
      EXPECT_EQ(as_int(plan.phases.size()), h);
      EXPECT_EQ(plan.total_slots(), h * theorem2_slots(topo));
      for (const HRelationPhase& phase : plan.phases) {
        EXPECT_EQ(as_int(phase.slots.size()), theorem2_slots(topo));
      }
      EXPECT_EQ(verify_h_relation(topo, requests, plan), "");
    }
  }
}

POPS_TEST(EveryColoringBackendRoutesTheRelation) {
  Rng rng(32);
  const Topology topo(4, 4);
  const auto requests = union_of_permutations(topo, 2, rng);
  for (const auto algorithm : kAllColoringAlgorithms) {
    RouterOptions options;
    options.coloring = algorithm;
    const HRelationPlan plan = route_h_relation(topo, requests, options);
    EXPECT_EQ(plan.h, 2);
    EXPECT_EQ(verify_h_relation(topo, requests, plan), "");
  }
}

POPS_TEST(RoutesUnbalancedRelations) {
  // A hot sender: processor 0 holds 3 packets, everyone else is idle.
  const Topology topo(2, 3);
  const std::vector<Request> hot = {{0, 1}, {0, 4}, {0, 5}};
  const HRelationPlan hot_plan = route_h_relation(topo, hot);
  EXPECT_EQ(hot_plan.h, 3);
  EXPECT_EQ(hot_plan.total_slots(), 3 * theorem2_slots(topo));
  EXPECT_EQ(verify_h_relation(topo, hot, hot_plan), "");

  // A hot receiver plus a self-request (delivered without moving).
  const std::vector<Request> mixed = {{1, 2}, {3, 2}, {5, 2}, {4, 4}};
  const HRelationPlan mixed_plan = route_h_relation(topo, mixed);
  EXPECT_EQ(mixed_plan.h, 3);
  EXPECT_EQ(verify_h_relation(topo, mixed, mixed_plan), "");
}

POPS_TEST(EmptyRelationRoutesInZeroSlots) {
  const Topology topo(4, 4);
  const std::vector<Request> none;
  const HRelationPlan plan = route_h_relation(topo, none);
  EXPECT_EQ(plan.h, 0);
  EXPECT_EQ(as_int(plan.phases.size()), 0);
  EXPECT_EQ(plan.total_slots(), 0);
  EXPECT_EQ(verify_h_relation(topo, none, plan), "");
}

// verify_h_relation is only trustworthy if it rejects broken plans.
POPS_TEST(VerifierRejectsCorruptedPlans) {
  Rng rng(33);
  const Topology topo(1, 6);  // one slot per phase: easy to corrupt
  const auto requests = union_of_permutations(topo, 2, rng);
  const HRelationPlan plan = route_h_relation(topo, requests);
  EXPECT_EQ(verify_h_relation(topo, requests, plan), "");

  // Dropping a phase strands that phase's packets at their sources.
  HRelationPlan truncated = plan;
  truncated.phases.pop_back();
  EXPECT_NE(verify_h_relation(topo, requests, truncated), "");

  // Bending one transmission misdelivers (or double-books a receiver).
  HRelationPlan bent = plan;
  Transmission& t = bent.phases[0].slots[0].transmissions[0];
  t.destination = (t.destination + 1) % topo.processor_count();
  EXPECT_NE(verify_h_relation(topo, requests, bent), "");

  // Naming a packet the transmitter does not hold is a model
  // violation the simulator refuses outright.
  HRelationPlan phantom = plan;
  phantom.phases[0].slots[0].transmissions[0].packet = -7;
  EXPECT_NE(verify_h_relation(topo, requests, phantom), "");
}

}  // namespace
}  // namespace pops
