// Tests for serve/: window-close edge cases, verification of the
// server's routed windows through the independent verify_h_relation
// checker (including a corrupted-window negative path), and the
// zero-steady-state-allocation soak contract.
#include "serve/traffic_server.h"

#include <vector>

#include "pops/patterns.h"
#include "routing/bounds.h"
#include "routing/verify.h"
#include "support/alloc_guard.h"
#include "tests/testing.h"

namespace pops {
namespace {

Demand make_demand(int source, int destination,
                   std::uint64_t arrival_tick = 0, int payload = 1) {
  Demand demand;
  demand.source = source;
  demand.destination = destination;
  demand.payload = payload;
  demand.arrival_tick = arrival_tick;
  return demand;
}

POPS_TEST(EmptyFlushIsNoOp) {
  TrafficServer server(Topology(4, 4));
  server.flush();
  server.flush();
  EXPECT_EQ(server.stats().windows_routed, 0);
  EXPECT_EQ(server.pending_demands(), 0);
  EXPECT_EQ(server.now(), std::uint64_t{0});
}

POPS_TEST(SingleDemandWindow) {
  const Topology topo(4, 4);
  TrafficServer server(topo);
  server.submit(make_demand(0, 5, 3));
  EXPECT_EQ(server.pending_demands(), 1);
  EXPECT_EQ(server.pending_degree(), 1);
  server.flush();
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.windows_routed, 1);
  EXPECT_EQ(stats.demands_routed, 1);
  EXPECT_EQ(server.last_window_degree(), 1);
  // One-phase window: exactly the Theorem 2 slot count.
  EXPECT_EQ(server.last_window_slots(), theorem2_slots(topo));
  EXPECT_EQ(stats.slots_executed,
            static_cast<long long>(theorem2_slots(topo)));
  EXPECT_EQ(stats.budget_slots, static_cast<long long>(
                                    h_relation_budget(topo, 1)));
  // Window executes at max(clock=0, arrival=3) and takes its slots.
  EXPECT_EQ(server.now(),
            std::uint64_t{3} +
                static_cast<std::uint64_t>(theorem2_slots(topo)));
  EXPECT_EQ(stats.queueing_delay.count, 1);
}

POPS_TEST(ExactlyHDegreeClosesOnBreach) {
  // Degree cap 2: two demands from the same source fill the window;
  // the third from that source must close it first.
  ServerConfig config;
  config.max_window_degree = 2;
  TrafficServer server(Topology(4, 4), config);
  server.submit(make_demand(0, 5));
  server.submit(make_demand(0, 6));
  EXPECT_EQ(server.pending_demands(), 2);
  EXPECT_EQ(server.pending_degree(), 2);
  EXPECT_EQ(server.stats().windows_routed, 0);
  server.submit(make_demand(0, 7));
  EXPECT_EQ(server.stats().windows_routed, 1);
  EXPECT_EQ(server.last_window_degree(), 2);
  EXPECT_EQ(server.pending_demands(), 1);
  server.flush();
  EXPECT_EQ(server.stats().windows_routed, 2);
  EXPECT_EQ(server.last_window_degree(), 1);
}

POPS_TEST(ReceiveDegreeAlsoCloses) {
  ServerConfig config;
  config.max_window_degree = 2;
  TrafficServer server(Topology(4, 4), config);
  server.submit(make_demand(1, 9));
  server.submit(make_demand(2, 9));
  server.submit(make_demand(3, 9));  // third receiver hit on 9
  EXPECT_EQ(server.stats().windows_routed, 1);
  EXPECT_EQ(server.pending_demands(), 1);
}

POPS_TEST(CountCapClosesWindow) {
  ServerConfig config;
  config.max_window_demands = 3;
  TrafficServer server(Topology(2, 4), config);
  server.submit(make_demand(0, 4));
  server.submit(make_demand(1, 5));
  EXPECT_EQ(server.stats().windows_routed, 0);
  server.submit(make_demand(2, 6));
  EXPECT_EQ(server.stats().windows_routed, 1);
  EXPECT_EQ(server.pending_demands(), 0);
}

POPS_TEST(LastWindowPassesVerifyHRelation) {
  // The server's last-window debug accessors reconstruct the
  // routing/h_relation types; the independent checker must accept the
  // plan for every arrival process and a couple of topologies.
  for (const auto& [d, g] : {std::pair{4, 4}, {8, 4}, {1, 8}}) {
    const Topology topo(d, g);
    for (const ArrivalProcess process : kAllArrivalProcesses) {
      ServerConfig config;
      config.max_window_degree = 3;
      config.max_window_demands = 64;
      TrafficServer server(topo, config);
      ArrivalConfig arrivals;
      arrivals.process = process;
      arrivals.seed = 21;
      ArrivalGenerator generator(topo, arrivals);
      while (server.stats().windows_routed < 3) {
        server.submit(generator.next());
      }
      const std::vector<Request> requests = server.last_window_requests();
      const HRelationPlan plan = server.last_window_plan();
      EXPECT_EQ(plan.h, server.last_window_degree());
      EXPECT_EQ(plan.total_slots(), server.last_window_slots());
      EXPECT_EQ(verify_h_relation(topo, requests, plan), std::string());
    }
  }
}

POPS_TEST(CorruptedWindowFailsVerification) {
  const Topology topo(4, 4);
  ServerConfig config;
  config.max_window_degree = 3;
  TrafficServer server(topo, config);
  ArrivalConfig arrivals;
  arrivals.seed = 5;
  ArrivalGenerator generator(topo, arrivals);
  while (server.stats().windows_routed < 1) {
    server.submit(generator.next());
  }
  const std::vector<Request> requests = server.last_window_requests();
  HRelationPlan plan = server.last_window_plan();
  EXPECT_EQ(verify_h_relation(topo, requests, plan), std::string());

  // Redirect the first routed transmission to a wrong receiver: the
  // strict checker must reject the doctored plan (the packet is either
  // misdelivered or the slot now violates the receiver rules).
  bool corrupted = false;
  for (auto& phase : plan.phases) {
    for (auto& slot : phase.slots) {
      if (!slot.transmissions.empty()) {
        Transmission& tx = slot.transmissions.front();
        tx.destination =
            (tx.destination + 1) % topo.processor_count();
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  EXPECT_TRUE(corrupted);
  EXPECT_NE(verify_h_relation(topo, requests, plan), std::string());

  // Dropping a request's packet entirely must also fail.
  HRelationPlan truncated = server.last_window_plan();
  if (!truncated.phases.empty()) {
    truncated.phases.back().requests.clear();
    truncated.phases.back().slots.clear();
    EXPECT_NE(verify_h_relation(topo, requests, truncated),
              std::string());
  }
}

POPS_TEST(SubmitRejectsBadDemands) {
  TrafficServer server(Topology(2, 2));
  EXPECT_ABORTS(server.submit(make_demand(-1, 0)));
  EXPECT_ABORTS(server.submit(make_demand(0, 4)));
  EXPECT_ABORTS(server.submit(make_demand(0, 1, 0, -1)));
}

POPS_TEST(ServerRejectsBadConfig) {
  ServerConfig degree;
  degree.max_window_degree = 0;
  EXPECT_ABORTS(TrafficServer(Topology(2, 2), degree));
  ServerConfig count;
  count.max_window_demands = 0;
  EXPECT_ABORTS(TrafficServer(Topology(2, 2), count));
}

POPS_TEST(ClockAdvancesMonotonically) {
  const Topology topo(4, 4);
  TrafficServer server(topo);
  std::uint64_t previous = server.now();
  ArrivalConfig arrivals;
  arrivals.process = ArrivalProcess::kBurstyOnOff;
  arrivals.seed = 33;
  ArrivalGenerator generator(topo, arrivals);
  for (int window = 0; window < 20; ++window) {
    while (server.stats().windows_routed < window + 1) {
      server.submit(generator.next());
    }
    EXPECT_TRUE(server.now() > previous);
    previous = server.now();
  }
}

POPS_TEST(SoakKeepsScratchFootprintFlat) {
  // The zero-allocation contract at system scale: after a warm-up,
  // 1000+ further windows must not grow a single server-owned arena.
  const Topology topo(4, 4);
  ServerConfig config;
  config.max_window_degree = 4;
  config.max_window_demands = 128;
  TrafficServer server(topo, config);
  // The constructor primes every arena at the window caps, so the
  // footprint is flat from birth — not merely after a lucky warm-up.
  const ScratchFootprint birth = server.scratch_footprint();
  ArrivalConfig arrivals;
  arrivals.seed = 77;
  ArrivalGenerator generator(topo, arrivals);
  while (server.stats().windows_routed < 50) {
    server.submit(generator.next());
  }
  const ScratchFootprint warm = server.scratch_footprint();
  EXPECT_TRUE(warm.units > 0);
  EXPECT_EQ(warm.units, birth.units);
  {
    // The 1000+-window steady stretch also runs inside an explicit
    // allocation ban: in POPS_ALLOC_GUARD builds any heap activity in
    // the generator, admission control, routing, or simulation aborts
    // outright — transient allocations included, which the capacity
    // comparison below cannot see.
    ScopedAllocationBan ban("test: traffic soak steady state");
    while (server.stats().windows_routed < 1100) {
      server.submit(generator.next());
    }
    server.flush();
  }
  EXPECT_EQ(server.scratch_footprint().units, warm.units);
  EXPECT_TRUE(server.stats().windows_routed >= 1100);
  EXPECT_EQ(server.stats().slots_executed, server.stats().budget_slots);
}

POPS_TEST(DelayHistogramPercentiles) {
  DelayHistogram histogram;
  EXPECT_EQ(histogram.percentile(0.5), std::uint64_t{0});
  for (int i = 0; i < 90; ++i) histogram.record(0);
  for (int i = 0; i < 9; ++i) histogram.record(5);   // bucket [4, 8)
  histogram.record(100);                             // bucket [64, 128)
  EXPECT_EQ(histogram.count, 100);
  EXPECT_EQ(histogram.max, std::uint64_t{100});
  EXPECT_EQ(histogram.percentile(0.50), std::uint64_t{0});
  EXPECT_EQ(histogram.percentile(0.95), std::uint64_t{7});
  EXPECT_EQ(histogram.percentile(1.0), std::uint64_t{127});
}

}  // namespace
}  // namespace pops
