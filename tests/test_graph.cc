#include "graph/bipartite_multigraph.h"
#include "graph/euler_split.h"
#include "graph/hopcroft_karp.h"
#include "support/prng.h"
#include "tests/graph_util.h"
#include "tests/testing.h"

namespace pops {
namespace {

using testing::random_regular;

POPS_TEST(MultigraphBasics) {
  BipartiteMultigraph g(3, 2);
  EXPECT_EQ(g.left_count(), 3);
  EXPECT_EQ(g.right_count(), 2);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_TRUE(g.is_regular());

  const int e0 = g.add_edge(0, 1);
  const int e1 = g.add_edge(0, 1);  // parallel edge
  const int e2 = g.add_edge(2, 0);
  EXPECT_EQ(e0, 0);
  EXPECT_EQ(e1, 1);
  EXPECT_EQ(e2, 2);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_EQ(g.left_degree(0), 2);
  EXPECT_EQ(g.left_degree(1), 0);
  EXPECT_EQ(g.right_degree(1), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_FALSE(g.is_regular());
  EXPECT_EQ(g.edge(1).left, 0);
  EXPECT_EQ(g.edge(2).right, 0);
  EXPECT_EQ(g.edges_at_left(0).size(), std::size_t{2});
}

POPS_TEST(EulerSplitHalvesEvenRegularGraphs) {
  Rng rng(3);
  for (const int n : {1, 2, 8, 32}) {
    for (const int degree : {2, 4, 8, 16}) {
      const BipartiteMultigraph g = random_regular(n, degree, rng);
      const EulerSplitResult split = euler_split(g);
      EXPECT_EQ(split.side.size(), as_size(g.edge_count()));
      std::vector<int> left_zero(as_size(n), 0);
      std::vector<int> right_zero(as_size(n), 0);
      for (int e = 0; e < g.edge_count(); ++e) {
        EXPECT_TRUE(split.side[as_size(e)] == 0 ||
                    split.side[as_size(e)] == 1);
        if (split.side[as_size(e)] == 0) {
          ++left_zero[as_size(g.edge(e).left)];
          ++right_zero[as_size(g.edge(e).right)];
        }
      }
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(left_zero[as_size(v)], degree / 2);
        EXPECT_EQ(right_zero[as_size(v)], degree / 2);
      }
    }
  }
}

POPS_TEST(EulerSplitBalancesOddDegrees) {
  // A 3-regular multigraph: every vertex must split 2/1 or 1/2.
  Rng rng(5);
  const int n = 16;
  const BipartiteMultigraph g = random_regular(n, 3, rng);
  const EulerSplitResult split = euler_split(g);
  std::vector<int> left_zero(as_size(n), 0);
  std::vector<int> right_zero(as_size(n), 0);
  for (int e = 0; e < g.edge_count(); ++e) {
    if (split.side[as_size(e)] == 0) {
      ++left_zero[as_size(g.edge(e).left)];
      ++right_zero[as_size(g.edge(e).right)];
    }
  }
  for (int v = 0; v < n; ++v) {
    EXPECT_TRUE(left_zero[as_size(v)] == 1 || left_zero[as_size(v)] == 2);
    EXPECT_TRUE(right_zero[as_size(v)] == 1 ||
                right_zero[as_size(v)] == 2);
  }
}

POPS_TEST(EulerSplitEmptyGraph) {
  const BipartiteMultigraph g(4, 4);
  const EulerSplitResult split = euler_split(g);
  EXPECT_TRUE(split.side.empty());
  EXPECT_EQ(split.half_count(0), 0);
}

POPS_TEST(MaximumMatchingIsPerfectOnRegularGraphs) {
  Rng rng(9);
  for (const int n : {1, 4, 16, 64}) {
    for (const int degree : {1, 3, 8}) {
      const BipartiteMultigraph g = random_regular(n, degree, rng);
      const MatchingResult matching = maximum_matching(g);
      EXPECT_EQ(matching.size, n);
      EXPECT_TRUE(matching.is_perfect(g));
      std::vector<bool> right_used(as_size(n), false);
      for (int l = 0; l < n; ++l) {
        const int e = matching.left_edge[as_size(l)];
        EXPECT_TRUE(e >= 0);
        EXPECT_EQ(g.edge(e).left, l);
        EXPECT_FALSE(right_used[as_size(g.edge(e).right)]);
        right_used[as_size(g.edge(e).right)] = true;
      }
    }
  }
}

POPS_TEST(MaximumMatchingOnIrregularGraph) {
  // Star: left 0 connected to all rights. Maximum matching is 1.
  BipartiteMultigraph star(3, 3);
  star.add_edge(0, 0);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  EXPECT_EQ(maximum_matching(star).size, 1);

  // Path-ish graph with a known maximum matching of 2.
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(maximum_matching(g).size, 2);

  // Empty graph.
  EXPECT_EQ(maximum_matching(BipartiteMultigraph(5, 2)).size, 0);
}

}  // namespace
}  // namespace pops
