// The bench tier registry (bench/tiers.h) is the contract every wired
// bench and every committed BENCH_<tier>.json snapshot depends on:
// a grid point that Topology rejects would abort every bench at that
// tier, and a bloated `fresh` tier would slow ctest/CI smoke for
// everyone. These tests pin both down.
#include <cstdlib>

#include "bench/tiers.h"
#include "perm/permutation.h"
#include "pops/network.h"
#include "routing/engine.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "testing.h"

namespace pops {
namespace {

using bench::all_tiers;
using bench::set_tier;
using bench::tier;
using bench::tier_by_name;
using bench::TierSpec;

POPS_TEST(TiersRegistryNamesAndOrder) {
  const auto& tiers = all_tiers();
  EXPECT_EQ(tiers.size(), 4u);
  EXPECT_EQ(tiers[0].name, "fresh");
  EXPECT_EQ(tiers[1].name, "small");
  EXPECT_EQ(tiers[2].name, "medium");
  EXPECT_EQ(tiers[3].name, "large");
  // Tiers are ordered by size: soak length and the largest topology
  // both grow strictly, so "run a bigger tier" always means more work.
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_TRUE(tiers[i - 1].soak_windows < tiers[i].soak_windows);
    const auto largest_n = [](const TierSpec& spec) {
      int best = 0;
      for (const bench::GridPoint point : spec.grid) {
        best = std::max(best, point.d * point.g);
      }
      return best;
    };
    EXPECT_TRUE(largest_n(tiers[i - 1]) < largest_n(tiers[i]));
  }
}

POPS_TEST(TiersEveryGridPointIsValidForTopology) {
  for (const TierSpec& spec : all_tiers()) {
    EXPECT_FALSE(spec.grid.empty());
    EXPECT_FALSE(spec.table_axis.empty());
    EXPECT_FALSE(spec.coloring_grid.empty());
    EXPECT_FALSE(spec.h_values.empty());
    EXPECT_FALSE(spec.serve_grid.empty());
    for (const bench::GridPoint point : spec.grid) {
      const Topology topo(point.d, point.g);  // aborts if invalid
      EXPECT_TRUE(topo.processor_count() >= 1);
    }
    for (const int axis : spec.table_axis) {
      // The E1 table crosses axis x axis as (d, g).
      const Topology topo(axis, axis);
      EXPECT_TRUE(topo.processor_count() >= 1);
    }
    for (const bench::ColoringPoint point : spec.coloring_grid) {
      EXPECT_TRUE(point.n >= 1);
      EXPECT_TRUE(point.degree >= 1);
      // A Delta-regular bipartite multigraph on n+n vertices needs
      // Delta <= n.
      EXPECT_TRUE(point.degree <= point.n);
    }
    for (const int h : spec.h_values) EXPECT_TRUE(h >= 1);
    for (const bench::ServePoint point : spec.serve_grid) {
      const Topology topo(point.d, point.g);
      EXPECT_TRUE(topo.processor_count() >= 1);
      EXPECT_TRUE(point.window_degree >= 1);
      // A window must be able to hold at least one full-degree round.
      EXPECT_TRUE(point.window_degree <= spec.max_window_demands);
    }
    EXPECT_TRUE(spec.serve_table_windows >= 1);
    EXPECT_TRUE(spec.soak_windows >= 1);
    EXPECT_TRUE(spec.random_trials >= 1);
    EXPECT_FALSE(spec.batch_threads.empty());
    for (const int threads : spec.batch_threads) {
      EXPECT_TRUE(threads >= 1);
    }
    EXPECT_TRUE(spec.batch_perms >= 1);
  }
}

POPS_TEST(TiersFreshIsSmallEnoughToRouteInProcess) {
  // The `fresh` tier is the ctest/smoke default: every grid point must
  // actually route + execute + verify here, fast, so the hermetic CI
  // smoke can afford the whole manifest. 64 processors is the agreed
  // ceiling for "toy".
  const TierSpec& fresh = tier_by_name("fresh");
  Rng rng(3);
  for (const bench::GridPoint point : fresh.grid) {
    const Topology topo(point.d, point.g);
    EXPECT_TRUE(topo.processor_count() <= 64);
    RoutingEngine engine(topo);
    const Permutation pi =
        Permutation::random(topo.processor_count(), rng);
    const FlatSchedule& plan = engine.route_permutation(pi);
    EXPECT_EQ(plan.slot_count(), theorem2_slots(topo));
    Network net(topo);
    net.load_permutation_traffic(pi);
    EXPECT_TRUE(net.execute(plan));
    EXPECT_TRUE(net.all_delivered());
  }
  for (const bench::ServePoint point : fresh.serve_grid) {
    EXPECT_TRUE(point.d * point.g <= 64);
  }
  EXPECT_TRUE(fresh.soak_windows <= 1000);
}

POPS_TEST(TiersLookupAndSelection) {
  EXPECT_EQ(tier_by_name("medium").name, "medium");
  // Default selection is fresh; set_tier switches the global.
  EXPECT_EQ(tier().name, "fresh");
  set_tier("small");
  EXPECT_EQ(tier().name, "small");
  set_tier("fresh");
  EXPECT_EQ(tier().name, "fresh");
}

POPS_TEST(TiersUnknownNameAborts) {
  EXPECT_ABORTS_WITH(tier_by_name("production"), "unknown bench tier");
  EXPECT_ABORTS_WITH(set_tier(""), "unknown bench tier");
}

}  // namespace
}  // namespace pops
