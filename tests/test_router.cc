// route(topo, pi, options) — the one-shot entry point of the routing
// API — plus the Theorem 2 slot formula and the deprecated
// route_permutation shim it replaced.
#include "perm/families.h"
#include "routing/router.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

constexpr RouteStrategy kAllStrategies[] = {
    RouteStrategy::kDirect, RouteStrategy::kTheorem2,
    RouteStrategy::kBest};

POPS_TEST(Theorem2SlotsFormula) {
  EXPECT_EQ(theorem2_slots(Topology(1, 1)), 1);
  EXPECT_EQ(theorem2_slots(Topology(1, 32)), 1);
  EXPECT_EQ(theorem2_slots(Topology(2, 1)), 4);
  EXPECT_EQ(theorem2_slots(Topology(2, 2)), 2);
  EXPECT_EQ(theorem2_slots(Topology(8, 8)), 2);
  EXPECT_EQ(theorem2_slots(Topology(2, 16)), 2);
  EXPECT_EQ(theorem2_slots(Topology(16, 4)), 8);
  EXPECT_EQ(theorem2_slots(Topology(17, 4)), 10);
  EXPECT_EQ(theorem2_slots(Topology(32, 32)), 2);
}

POPS_TEST(RouteStrategyNames) {
  EXPECT_EQ(to_string(RouteStrategy::kDirect), "direct");
  EXPECT_EQ(to_string(RouteStrategy::kTheorem2), "theorem2");
  EXPECT_EQ(to_string(RouteStrategy::kBest), "best");
}

// The paper's headline claim, machine-checked: for every topology in
// the sweep and every permutation class, the constructed schedule
// passes strict verification and uses exactly theorem2_slots slots.
POPS_TEST(RoutesEveryPermutationClassAtTheBound) {
  Rng rng(17);
  for (const int d : {1, 2, 3, 4, 8, 9}) {
    for (const int g : {1, 2, 3, 5, 8}) {
      const Topology topo(d, g);
      const int n = topo.processor_count();
      std::vector<Permutation> cases;
      cases.push_back(Permutation::identity(n));
      cases.push_back(vector_reversal(n));
      cases.push_back(group_rotation(d, g, g > 1 ? 1 : 0));
      cases.push_back(Permutation::random(n, rng));
      if (n > 1) {
        cases.push_back(Permutation::random_derangement(n, rng));
      }
      for (const Permutation& pi : cases) {
        const RouteResult result =
            route(topo, pi, {RouteStrategy::kTheorem2});
        EXPECT_EQ(result.slot_count, theorem2_slots(topo));
        EXPECT_EQ(result.schedule.slot_count(), result.slot_count);
        EXPECT_TRUE(result.strategy == RouteStrategy::kTheorem2);
        const VerificationResult vr =
            verify_schedule(topo, pi, result.schedule);
        EXPECT_TRUE(vr.ok);
        if (!vr.ok) {
          EXPECT_EQ(vr.failure, "");  // surface the reason in the log
        }
      }
    }
  }
}

// Satellite coverage for the unified entry point: every strategy, with
// and without verification, yields a verified schedule and coherent
// RouteResult fields. (options.verify aborts on a bad schedule, so a
// returning call IS the assertion for the verify=true half.)
POPS_TEST(RouteEveryStrategyWithAndWithoutVerify) {
  Rng rng(21);
  for (const auto& [d, g] : {std::pair{1, 4}, {4, 4}, {8, 2}, {3, 5}}) {
    const Topology topo(d, g);
    const Permutation pi =
        Permutation::random(topo.processor_count(), rng);
    for (const RouteStrategy strategy : kAllStrategies) {
      for (const bool verify : {false, true}) {
        RouteOptions options;
        options.strategy = strategy;
        options.verify = verify;
        const RouteResult result = route(topo, pi, options);
        EXPECT_EQ(result.slot_count, result.schedule.slot_count());
        EXPECT_TRUE(result.slot_count >= 1);
        EXPECT_TRUE(verify_schedule(topo, pi, result.schedule).ok);
        if (strategy == RouteStrategy::kTheorem2) {
          EXPECT_EQ(result.slot_count, theorem2_slots(topo));
          EXPECT_TRUE(result.strategy == RouteStrategy::kTheorem2);
        }
        if (strategy == RouteStrategy::kDirect) {
          EXPECT_TRUE(result.strategy == RouteStrategy::kDirect);
        }
        if (strategy == RouteStrategy::kBest) {
          // kBest reports the concrete winner, never itself, and the
          // winner is no worse than the Theorem 2 bound.
          EXPECT_TRUE(result.strategy != RouteStrategy::kBest);
          EXPECT_TRUE(result.slot_count <= theorem2_slots(topo));
        }
      }
    }
  }
}

// kBest picks the shorter candidate on both sides of the crossover.
POPS_TEST(RouteBestPicksTheWinner) {
  const Topology adversarial_topo(16, 4);
  const RouteResult adversarial = route(
      adversarial_topo, group_rotation(16, 4, 1), {RouteStrategy::kBest});
  EXPECT_TRUE(adversarial.strategy == RouteStrategy::kTheorem2);
  EXPECT_EQ(adversarial.slot_count, theorem2_slots(adversarial_topo));

  const Topology square(4, 4);
  // Transpose traffic: one packet per coupler, direct wins in 1 slot.
  std::vector<int> images(16);
  for (int p = 0; p < 16; ++p) images[as_size(p)] = (p % 4) * 4 + p / 4;
  const RouteResult easy =
      route(square, Permutation(std::move(images)), {RouteStrategy::kBest});
  EXPECT_TRUE(easy.strategy == RouteStrategy::kDirect);
  EXPECT_EQ(easy.slot_count, 1);
}

POPS_TEST(AllColoringBackendsProduceVerifiedPlans) {
  Rng rng(18);
  for (const auto algorithm : kAllColoringAlgorithms) {
    RouteOptions options;
    options.strategy = RouteStrategy::kTheorem2;
    options.coloring = algorithm;
    for (const auto& [d, g] :
         {std::pair{2, 2}, {4, 2}, {3, 4}, {7, 3}, {8, 8}}) {
      const Topology topo(d, g);
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      const RouteResult result = route(topo, pi, options);
      EXPECT_EQ(result.slot_count, theorem2_slots(topo));
      EXPECT_TRUE(verify_schedule(topo, pi, result.schedule).ok);
    }
  }
}

POPS_TEST(SingleSlotTopologyRoutesDirectly) {
  Rng rng(20);
  const Topology topo(1, 8);
  const Permutation pi = Permutation::random(8, rng);
  const RouteResult result = route(topo, pi, {RouteStrategy::kTheorem2});
  EXPECT_EQ(result.slot_count, 1);
  EXPECT_TRUE(verify_schedule(topo, pi, result.schedule).ok);
}

// The deprecated wrapper must keep producing exactly the schedule the
// canonical entry point produces (it is documented as a shim, so
// "equivalent" means transmission-for-transmission identical), plus
// the legacy intermediate_of payload.
POPS_TEST(DeprecatedRoutePermutationShimMatchesRoute) {
  Rng rng(19);
  for (const auto& [d, g] : {std::pair{4, 3}, {1, 8}, {8, 8}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    const Permutation pi = Permutation::random(n, rng);
    const RouteResult result = route(topo, pi, {RouteStrategy::kTheorem2});
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const RoutePlan plan = route_permutation(topo, pi);
#pragma GCC diagnostic pop
    EXPECT_EQ(plan.slot_count(), result.slot_count);
    for (int s = 0; s < result.slot_count; ++s) {
      const Span<const Transmission> flat = result.schedule.slot(s);
      const std::vector<Transmission>& nested =
          plan.slots[as_size(s)].transmissions;
      EXPECT_EQ(nested.size(), flat.size());
      for (std::size_t i = 0; i < flat.size(); ++i) {
        EXPECT_EQ(nested[i].source, flat[i].source);
        EXPECT_EQ(nested[i].destination, flat[i].destination);
        EXPECT_EQ(nested[i].packet, flat[i].packet);
      }
    }
    // Legacy intermediates: one in-range intermediate per packet,
    // consistent with the first slot of each batch pair.
    EXPECT_EQ(plan.intermediate_of.size(), as_size(n));
    for (int s = 0; s < n; ++s) {
      const int mid = plan.intermediate_of[as_size(s)];
      EXPECT_TRUE(mid >= 0 && mid < n);
    }
    for (std::size_t slot = 0; slot + 1 < plan.slots.size(); slot += 2) {
      std::vector<bool> used(as_size(n), false);
      for (const Transmission& t : plan.slots[slot].transmissions) {
        EXPECT_FALSE(used[as_size(t.destination)]);
        used[as_size(t.destination)] = true;
        EXPECT_EQ(plan.intermediate_of[as_size(t.packet)], t.destination);
      }
    }
  }
}

}  // namespace
}  // namespace pops
