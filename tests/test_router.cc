#include "perm/families.h"
#include "routing/router.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(Theorem2SlotsFormula) {
  EXPECT_EQ(theorem2_slots(Topology(1, 1)), 1);
  EXPECT_EQ(theorem2_slots(Topology(1, 32)), 1);
  EXPECT_EQ(theorem2_slots(Topology(2, 1)), 4);
  EXPECT_EQ(theorem2_slots(Topology(2, 2)), 2);
  EXPECT_EQ(theorem2_slots(Topology(8, 8)), 2);
  EXPECT_EQ(theorem2_slots(Topology(2, 16)), 2);
  EXPECT_EQ(theorem2_slots(Topology(16, 4)), 8);
  EXPECT_EQ(theorem2_slots(Topology(17, 4)), 10);
  EXPECT_EQ(theorem2_slots(Topology(32, 32)), 2);
}

// The paper's headline claim, machine-checked: for every topology in
// the sweep and every permutation class, the constructed schedule
// passes strict verification and uses exactly theorem2_slots slots.
POPS_TEST(RoutesEveryPermutationClassAtTheBound) {
  Rng rng(17);
  for (const int d : {1, 2, 3, 4, 8, 9}) {
    for (const int g : {1, 2, 3, 5, 8}) {
      const Topology topo(d, g);
      const int n = topo.processor_count();
      std::vector<Permutation> cases;
      cases.push_back(Permutation::identity(n));
      cases.push_back(vector_reversal(n));
      cases.push_back(group_rotation(d, g, g > 1 ? 1 : 0));
      cases.push_back(Permutation::random(n, rng));
      if (n > 1) {
        cases.push_back(Permutation::random_derangement(n, rng));
      }
      for (const Permutation& pi : cases) {
        const RoutePlan plan = route_permutation(topo, pi);
        EXPECT_EQ(plan.slot_count(), theorem2_slots(topo));
        const VerificationResult vr = verify_schedule(topo, pi, plan.slots);
        EXPECT_TRUE(vr.ok);
        if (!vr.ok) {
          EXPECT_EQ(vr.failure, "");  // surface the reason in the log
        }
      }
    }
  }
}

POPS_TEST(AllColoringBackendsProduceVerifiedPlans) {
  Rng rng(18);
  for (const auto algorithm : kAllColoringAlgorithms) {
    RouterOptions options;
    options.coloring = algorithm;
    for (const auto& [d, g] :
         {std::pair{2, 2}, {4, 2}, {3, 4}, {7, 3}, {8, 8}}) {
      const Topology topo(d, g);
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      const RoutePlan plan = route_permutation(topo, pi, options);
      EXPECT_EQ(plan.slot_count(), theorem2_slots(topo));
      EXPECT_TRUE(verify_schedule(topo, pi, plan.slots).ok);
    }
  }
}

POPS_TEST(IntermediatesAreConsistent) {
  Rng rng(19);
  const Topology topo(4, 3);
  const Permutation pi = Permutation::random(12, rng);
  const RoutePlan plan = route_permutation(topo, pi);
  EXPECT_EQ(plan.intermediate_of.size(), std::size_t{12});
  for (int s = 0; s < 12; ++s) {
    const int mid = plan.intermediate_of[as_size(s)];
    EXPECT_TRUE(mid >= 0 && mid < topo.processor_count());
  }
  // Within one batch (pair of slots), intermediates are distinct
  // processors; across the whole plan every packet has exactly one.
  for (std::size_t slot = 0; slot + 1 < plan.slots.size(); slot += 2) {
    std::vector<bool> used(as_size(topo.processor_count()), false);
    for (const Transmission& t : plan.slots[slot].transmissions) {
      EXPECT_FALSE(used[as_size(t.destination)]);
      used[as_size(t.destination)] = true;
      EXPECT_EQ(plan.intermediate_of[as_size(t.packet)], t.destination);
    }
  }
}

POPS_TEST(SingleSlotTopologyRoutesDirectly) {
  Rng rng(20);
  const Topology topo(1, 8);
  const Permutation pi = Permutation::random(8, rng);
  const RoutePlan plan = route_permutation(topo, pi);
  EXPECT_EQ(plan.slot_count(), 1);
  EXPECT_TRUE(verify_schedule(topo, pi, plan.slots).ok);
}

}  // namespace
}  // namespace pops
