// Satellite: negative-path coverage for verify_schedule. A schedule
// that oversubscribes a coupler and one that misdelivers a packet must
// both fail verification with a useful failure string. Hand-built
// schedules use the canonical FlatSchedule layout; one test pins the
// deprecated nested overload to the same verdicts.
#include "perm/families.h"
#include "routing/router.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(AcceptsACorrectSchedule) {
  const Topology topo(2, 2);
  const Permutation pi = vector_reversal(4);
  const RouteResult result = route(topo, pi, {RouteStrategy::kTheorem2});
  const VerificationResult vr = verify_schedule(topo, pi, result.schedule);
  EXPECT_TRUE(vr.ok);
  EXPECT_EQ(vr.failure, "");
}

POPS_TEST(RejectsCouplerOversubscription) {
  // POPS(2, 2), reversal: packets 0 (0 -> 3) and 1 (1 -> 2) both cross
  // from group 0 to group 1, so sending them in the same slot drives
  // coupler c(1, 0) twice.
  const Topology topo(2, 2);
  const Permutation pi = vector_reversal(4);
  FlatSchedule schedule;
  schedule.begin_slot();
  schedule.push(Transmission{0, 3, 0});
  schedule.push(Transmission{1, 2, 1});
  const VerificationResult vr = verify_schedule(topo, pi, schedule);
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.failure.find("coupler") != std::string::npos);
  EXPECT_TRUE(vr.failure.find("oversubscribed") != std::string::npos);
}

POPS_TEST(RejectsMisdelivery) {
  // A schedule whose every slot obeys the optical model but which
  // parks packets 1 and 2 at the wrong processors.
  const Topology topo(2, 2);
  const Permutation pi = vector_reversal(4);  // 0->3 1->2 2->1 3->0
  FlatSchedule schedule;
  schedule.begin_slot();  // valid slot, wrong drops:
  schedule.push(Transmission{2, 0, 2});  // 2 wants 1
  schedule.push(Transmission{1, 3, 1});  // 1 wants 2
  schedule.begin_slot();  // deliver packets 0 and 3 correctly
  schedule.push(Transmission{0, 3, 0});
  schedule.push(Transmission{3, 0, 3});
  const VerificationResult vr = verify_schedule(topo, pi, schedule);
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.failure.find("packet") != std::string::npos);
  EXPECT_TRUE(vr.failure.find("stranded") != std::string::npos);
}

POPS_TEST(RejectsUndeliveredPackets) {
  // An empty schedule delivers nothing (except fixed points).
  const Topology topo(2, 2);
  const Permutation pi = vector_reversal(4);
  const VerificationResult vr = verify_schedule(topo, pi, FlatSchedule{});
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.failure.find("stranded") != std::string::npos);
}

POPS_TEST(RejectsPhantomSend) {
  const Topology topo(2, 2);
  const Permutation pi = Permutation::identity(4);
  FlatSchedule schedule;
  schedule.begin_slot();
  schedule.push(Transmission{0, 1, 3});  // 0 holds 0, not 3
  const VerificationResult vr = verify_schedule(topo, pi, schedule);
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.failure.find("does not hold packet") !=
              std::string::npos);
}

POPS_TEST(RejectsScheduleForTheWrongPermutation) {
  // Route pi2 but verify against pi: delivery completes somewhere else.
  Rng rng(31);
  const Topology topo(4, 4);
  const Permutation pi = Permutation::random_derangement(16, rng);
  const Permutation pi2 = Permutation::random_derangement(16, rng);
  EXPECT_FALSE(pi.images() == pi2.images());
  const RouteResult result = route(topo, pi2, {RouteStrategy::kTheorem2});
  EXPECT_TRUE(verify_schedule(topo, pi2, result.schedule).ok);
  const VerificationResult vr = verify_schedule(topo, pi, result.schedule);
  EXPECT_FALSE(vr.ok);
  EXPECT_FALSE(vr.failure.empty());
}

POPS_TEST(RejectsSizeMismatch) {
  const VerificationResult vr = verify_schedule(
      Topology(2, 2), Permutation::identity(3), FlatSchedule{});
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.failure.find("does not fit") != std::string::npos);
}

POPS_TEST(DeprecatedNestedOverloadDelegates) {
  // The nested vector<SlotPlan> overload must reach the same verdicts
  // as the flat path: accept a correct schedule, reject an
  // oversubscribed one with the same diagnostic.
  const Topology topo(2, 2);
  const Permutation pi = vector_reversal(4);
  const std::vector<SlotPlan> good =
      route(topo, pi, {RouteStrategy::kTheorem2})
          .schedule.to_slot_plans();
  SlotPlan oversubscribed;
  oversubscribed.transmissions.push_back(Transmission{0, 3, 0});
  oversubscribed.transmissions.push_back(Transmission{1, 2, 1});
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_TRUE(verify_schedule(topo, pi, good).ok);
  const VerificationResult vr =
      verify_schedule(topo, pi, {oversubscribed});
#pragma GCC diagnostic pop
  EXPECT_FALSE(vr.ok);
  EXPECT_TRUE(vr.failure.find("oversubscribed") != std::string::npos);
}

}  // namespace
}  // namespace pops
