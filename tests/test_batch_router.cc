// BatchRouter contract tests: batch output must be bitwise identical
// to routing the same permutations sequentially on one engine (for
// every strategy, with and without verification, at one and several
// threads), the streaming submit/drain path must complete everything,
// and the pool's scratch footprint must stay flat across a soak —
// the no-allocation-after-construction claim, checked both by
// footprint diff and by the per-engine allocation bans in
// POPS_ALLOC_GUARD builds.
#include <vector>

#include "perm/families.h"
#include "routing/batch_router.h"
#include "routing/engine.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

bool identical(const FlatSchedule& a, const FlatSchedule& b) {
  if (a.slot_count() != b.slot_count()) return false;
  if (a.transmission_count() != b.transmission_count()) return false;
  for (int s = 0; s < a.slot_count(); ++s) {
    const Span<const Transmission> sa = a.slot(s);
    const Span<const Transmission> sb = b.slot(s);
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].source != sb[i].source ||
          sa[i].destination != sb[i].destination ||
          sa[i].packet != sb[i].packet) {
        return false;
      }
    }
  }
  return true;
}

POPS_TEST(BatchMatchesSequentialEngineAcrossStrategies) {
  Rng rng(81);
  for (const auto& [d, g] : {std::pair{1, 4}, {4, 4}, {8, 3}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    std::vector<Permutation> perms;
    for (int i = 0; i < 12; ++i) {
      perms.push_back(Permutation::random(n, rng));
    }
    // The construction is deterministic for a fixed engine
    // configuration, so every worker's engine — and this sequential
    // reference — must emit the exact same transmissions.
    RoutingEngine sequential(topo);
    for (const int threads : {1, 3}) {
      BatchRouterConfig config;
      config.threads = threads;
      BatchRouter router(topo, config);
      EXPECT_EQ(router.thread_count(), threads);
      EXPECT_EQ(router.topology().processor_count(), n);
      for (const RouteStrategy strategy :
           {RouteStrategy::kDirect, RouteStrategy::kTheorem2,
            RouteStrategy::kBest}) {
        for (const bool verify : {false, true}) {
          RouteOptions options;
          options.strategy = strategy;
          options.verify = verify;
          std::vector<FlatSchedule> results(perms.size());
          router.route_batch(perms, results, options);
          for (std::size_t i = 0; i < perms.size(); ++i) {
            const FlatSchedule& expected =
                sequential.route(perms[i], options);
            EXPECT_TRUE(identical(results[i], expected));
            EXPECT_TRUE(verify_schedule(topo, perms[i], results[i]).ok);
          }
        }
      }
    }
  }
}

POPS_TEST(StreamingSubmitDrainMatchesSequential) {
  Rng rng(82);
  const Topology topo(4, 4);
  const int n = topo.processor_count();
  std::vector<Permutation> perms;
  for (int i = 0; i < 20; ++i) {
    perms.push_back(Permutation::random(n, rng));
  }
  std::vector<FlatSchedule> results(perms.size());
  BatchRouterConfig config;
  config.threads = 2;
  // Deliberately smaller than the job count so submit() exercises its
  // ring-full blocking path.
  config.queue_capacity = 3;
  BatchRouter router(topo, config);
  const RouteOptions options{RouteStrategy::kTheorem2};
  for (std::size_t i = 0; i < perms.size(); ++i) {
    router.submit(&perms[i], &results[i], options);
  }
  router.drain();
  RoutingEngine sequential(topo);
  for (std::size_t i = 0; i < perms.size(); ++i) {
    EXPECT_TRUE(identical(results[i], sequential.route(perms[i], options)));
  }
  // drain() with nothing outstanding returns immediately.
  router.drain();
}

POPS_TEST(MoreThreadsThanJobs) {
  Rng rng(83);
  const Topology topo(2, 4);
  BatchRouterConfig config;
  config.threads = 8;
  BatchRouter router(topo, config);
  std::vector<Permutation> perms;
  for (int i = 0; i < 3; ++i) {
    perms.push_back(Permutation::random(8, rng));
  }
  std::vector<FlatSchedule> results(perms.size());
  router.route_batch(perms, results);
  RoutingEngine sequential(topo);
  for (std::size_t i = 0; i < perms.size(); ++i) {
    EXPECT_TRUE(identical(results[i], sequential.route(perms[i])));
  }
}

POPS_TEST(EmptyBatchIsANoOp) {
  const Topology topo(2, 2);
  BatchRouter router(topo);
  std::vector<Permutation> no_perms;
  std::vector<FlatSchedule> no_results;
  router.route_batch(no_perms, no_results);
  router.drain();
}

POPS_TEST(BackToBackBatchesReuseTheSamePool) {
  // Regression guard for the batch state machine: consecutive bulk
  // calls must not leak claim state from one batch into the next.
  Rng rng(84);
  const Topology topo(4, 2);
  BatchRouterConfig config;
  config.threads = 3;
  BatchRouter router(topo, config);
  RoutingEngine sequential(topo);
  for (int round = 0; round < 10; ++round) {
    std::vector<Permutation> perms;
    for (int i = 0; i < 1 + round % 5; ++i) {
      perms.push_back(Permutation::random(8, rng));
    }
    std::vector<FlatSchedule> results(perms.size());
    router.route_batch(perms, results);
    for (std::size_t i = 0; i < perms.size(); ++i) {
      EXPECT_TRUE(identical(results[i], sequential.route(perms[i])));
    }
  }
}

POPS_TEST(FootprintStaysFlatAcrossSoak) {
  Rng rng(85);
  const Topology topo(8, 4);
  const int n = topo.processor_count();
  std::vector<Permutation> perms;
  for (int i = 0; i < 16; ++i) {
    perms.push_back(Permutation::random(n, rng));
  }
  std::vector<FlatSchedule> results(perms.size());
  BatchRouterConfig config;
  config.threads = 2;
  config.queue_capacity = 4;
  BatchRouter router(topo, config);
  const RouteOptions options{RouteStrategy::kBest};
  // One warm pass per path grows the caller-owned result slots to
  // their steady-state shapes; after that, nothing grows anywhere.
  router.route_batch(perms, results, options);
  for (std::size_t i = 0; i < perms.size(); ++i) {
    router.submit(&perms[i], &results[i], options);
  }
  router.drain();
  const ScratchFootprint warm = router.scratch_footprint();
  EXPECT_TRUE(warm.units > 0);
  const auto result_capacity = [&results] {
    std::size_t total = 0;
    for (const FlatSchedule& schedule : results) {
      total += schedule.transmission_capacity();
      total += schedule.offset_capacity();
    }
    return total;
  };
  const std::size_t warm_results = result_capacity();
  for (int round = 0; round < 6; ++round) {
    router.route_batch(perms, results, options);
    EXPECT_EQ(router.scratch_footprint(), warm);
    for (std::size_t i = 0; i < perms.size(); ++i) {
      router.submit(&perms[i], &results[i], options);
    }
    router.drain();
    EXPECT_EQ(router.scratch_footprint(), warm);
    EXPECT_EQ(result_capacity(), warm_results);
  }
}

POPS_TEST(RouteBatchRejectsSizeMismatch) {
  Rng rng(86);
  const Topology topo(2, 2);
  BatchRouter router(topo);
  std::vector<Permutation> perms{Permutation::random(4, rng),
                                 Permutation::random(4, rng)};
  std::vector<FlatSchedule> results(1);
  EXPECT_ABORTS_WITH(router.route_batch(perms, results),
                     "one result slot per permutation");
}

}  // namespace
}  // namespace pops
