// Satellite: unit coverage for color_edges — every backend on random
// Delta-regular multigraphs (validity + exactly Delta colors) and on
// degenerate shapes (Delta = 1, n = 1, empty graph).
#include "graph/edge_coloring.h"
#include "graph/validation.h"
#include "support/prng.h"
#include "tests/graph_util.h"
#include "tests/testing.h"

namespace pops {
namespace {

using testing::random_regular;

POPS_TEST(AlgorithmNames) {
  EXPECT_EQ(to_string(ColoringAlgorithm::kAlternatingPath),
            "alternating-path");
  EXPECT_EQ(to_string(ColoringAlgorithm::kEulerSplit), "euler-split");
  EXPECT_EQ(to_string(ColoringAlgorithm::kMatchingPeel),
            "matching-peel");
  EXPECT_EQ(to_string(ColoringAlgorithm::kCircuitPeel), "circuit-peel");
}

POPS_TEST(EveryBackendColorsRegularGraphsWithDeltaColors) {
  Rng rng(21);
  for (const auto algorithm : kAllColoringAlgorithms) {
    for (const int n : {2, 5, 8, 16, 32}) {
      for (const int degree : {1, 2, 3, 4, 7, 8, 13}) {
        const BipartiteMultigraph g = random_regular(n, degree, rng);
        const EdgeColoring coloring = color_edges(g, algorithm);
        EXPECT_EQ(coloring.num_colors, degree);
        EXPECT_TRUE(is_valid_edge_coloring(g, coloring));
      }
    }
  }
}

POPS_TEST(EveryBackendHandlesDegenerateShapes) {
  for (const auto algorithm : kAllColoringAlgorithms) {
    // Empty graph: zero colors.
    const BipartiteMultigraph empty(3, 4);
    const EdgeColoring none = color_edges(empty, algorithm);
    EXPECT_EQ(none.num_colors, 0);
    EXPECT_TRUE(is_valid_edge_coloring(empty, none));

    // n = 1 with Delta parallel edges: every edge its own color.
    BipartiteMultigraph bundle(1, 1);
    for (int k = 0; k < 5; ++k) bundle.add_edge(0, 0);
    const EdgeColoring rainbow = color_edges(bundle, algorithm);
    EXPECT_EQ(rainbow.num_colors, 5);
    EXPECT_TRUE(is_valid_edge_coloring(bundle, rainbow));

    // Delta = 1 (a partial matching): one color.
    BipartiteMultigraph matching(4, 4);
    matching.add_edge(0, 2);
    matching.add_edge(3, 1);
    const EdgeColoring mono = color_edges(matching, algorithm);
    EXPECT_EQ(mono.num_colors, 1);
    EXPECT_TRUE(is_valid_edge_coloring(matching, mono));
  }
}

POPS_TEST(EveryBackendColorsIrregularGraphs) {
  // Irregular bipartite multigraphs still get exactly Delta colors.
  Rng rng(22);
  for (const auto algorithm : kAllColoringAlgorithms) {
    for (int trial = 0; trial < 10; ++trial) {
      BipartiteMultigraph g(6, 9);
      const int edges = 5 + rng.next_below(30);
      for (int e = 0; e < edges; ++e) {
        g.add_edge(rng.next_below(6), rng.next_below(9));
      }
      const EdgeColoring coloring = color_edges(g, algorithm);
      EXPECT_EQ(coloring.num_colors, g.max_degree());
      EXPECT_TRUE(is_valid_edge_coloring(g, coloring));
    }
  }
}

POPS_TEST(EveryBackendHasFlatScratchAcrossSameShapedGraphs) {
  // The flatness contract: after one warm-up coloring, repeated
  // colorings of same-shaped graphs never grow any colorer-owned
  // scratch — for ALL four backends, now that the divide-and-conquer
  // ones run iteratively over the padded flat edge array instead of
  // building transient subgraphs.
  for (const auto algorithm : kAllColoringAlgorithms) {
    Rng rng(31);
    EdgeColorer colorer;
    EdgeColoring out;
    {
      const BipartiteMultigraph warm_up = random_regular(12, 6, rng);
      colorer.color(warm_up, algorithm, out);
    }
    const std::size_t warm = colorer.scratch_capacity();
    EXPECT_TRUE(warm > 0);
    for (int trial = 0; trial < 1000; ++trial) {
      const BipartiteMultigraph g = random_regular(12, 6, rng);
      colorer.color(g, algorithm, out);
      EXPECT_EQ(colorer.scratch_capacity(), warm);
    }
    // The soak is about capacities; spot-check validity once at the
    // end so a silently-broken kernel cannot pass as "flat".
    const BipartiteMultigraph last = random_regular(12, 6, rng);
    colorer.color(last, algorithm, out);
    EXPECT_TRUE(is_valid_edge_coloring(last, out));
    EXPECT_EQ(colorer.scratch_capacity(), warm);
  }
}

POPS_TEST(ValidationRejectsBrokenColorings) {
  BipartiteMultigraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  EdgeColoring ok{{0, 1}, 2};
  EXPECT_TRUE(is_valid_edge_coloring(g, ok));

  EdgeColoring clash{{0, 0}, 2};  // both edges at left 0 share a color
  EXPECT_FALSE(is_valid_edge_coloring(g, clash));

  EdgeColoring out_of_range{{0, 2}, 2};
  EXPECT_FALSE(is_valid_edge_coloring(g, out_of_range));

  EdgeColoring wrong_size{{0}, 2};
  EXPECT_FALSE(is_valid_edge_coloring(g, wrong_size));
}

POPS_TEST(SpreadColorsBalancesClassSizes) {
  Rng rng(23);
  // d-regular on g+g vertices spread onto g classes of exactly d edges
  // each — the router's fair-distribution shape (d < g).
  for (const auto& [n, degree] : {std::pair{8, 3}, {16, 5}, {9, 9}}) {
    const BipartiteMultigraph g = random_regular(n, degree, rng);
    const EdgeColoring base = color_edges(g);
    const EdgeColoring spread = spread_colors(g, base, n);
    EXPECT_EQ(spread.num_colors, n);
    EXPECT_TRUE(is_valid_edge_coloring(g, spread));
    std::vector<int> sizes(as_size(n), 0);
    for (const int c : spread.color) ++sizes[as_size(c)];
    for (const int size : sizes) {
      EXPECT_EQ(size, degree);
    }
  }
}

POPS_TEST(SpreadColorsHandlesMoreClassesThanEdges) {
  // num_classes larger than the edge count: balance means every class
  // holds at most one edge (some classes stay empty).
  BipartiteMultigraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const EdgeColoring base = color_edges(g);
  EXPECT_EQ(base.num_colors, 2);
  const EdgeColoring spread = spread_colors(g, base, 7);
  EXPECT_EQ(spread.num_colors, 7);
  EXPECT_TRUE(is_valid_edge_coloring(g, spread));
  std::vector<int> sizes(as_size(7), 0);
  for (const int c : spread.color) ++sizes[as_size(c)];
  for (const int size : sizes) {
    EXPECT_TRUE(size <= 1);
  }

  // Degenerate corner: more classes than edges on an empty graph.
  const BipartiteMultigraph empty(2, 2);
  const EdgeColoring none = spread_colors(empty, color_edges(empty), 3);
  EXPECT_EQ(none.num_colors, 3);
  EXPECT_TRUE(none.color.empty());
}

POPS_TEST(SpreadColorsKeepsAlreadyBalancedColorings) {
  Rng rng(24);
  const BipartiteMultigraph g = random_regular(8, 8, rng);
  const EdgeColoring base = color_edges(g);
  const EdgeColoring spread = spread_colors(g, base, 8);
  EXPECT_TRUE(is_valid_edge_coloring(g, spread));
  std::vector<int> sizes(as_size(8), 0);
  for (const int c : spread.color) ++sizes[as_size(c)];
  for (const int size : sizes) {
    EXPECT_EQ(size, 8);
  }
}

}  // namespace
}  // namespace pops
