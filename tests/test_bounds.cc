// Satellite: the per-instance lower bounds of routing/bounds are
// sound (never above a verified measured schedule) and tight where the
// paper's Propositions promise tightness.
#include "routing/bounds.h"

#include "perm/families.h"
#include "pops/patterns.h"
#include "routing/engine.h"
#include "routing/verify.h"
#include "support/prng.h"
#include "tests/testing.h"

namespace pops {
namespace {

POPS_TEST(CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_ABORTS(ceil_div(-1, 3));
  EXPECT_ABORTS(ceil_div(1, 0));
}

POPS_TEST(IdentityNeedsNoSlots) {
  const Topology topo(4, 4);
  EXPECT_EQ(lower_bound_slots(topo, Permutation::identity(16)), 0);
}

POPS_TEST(DOneRoutesInOneSlot) {
  const Topology topo(1, 8);
  EXPECT_EQ(lower_bound_slots(topo, vector_reversal(8)), 1);
  EXPECT_EQ(lower_bound_slots(topo, group_rotation(1, 8, 1)), 1);
}

POPS_TEST(DerangementBoundIsCeilDOverG) {
  // Proposition 1: a derangement's bound is the bandwidth bound
  // ceil(d / g) (every packet moves), so Theorem 2's ratio is <= 2.
  Rng rng(3);
  for (const auto& [d, g] :
       {std::pair{4, 4}, {8, 4}, {16, 4}, {4, 8}, {12, 3}}) {
    const Topology topo(d, g);
    const Permutation pi =
        Permutation::random_derangement(topo.processor_count(), rng);
    EXPECT_EQ(lower_bound_slots(topo, pi), ceil_div(d, g));
  }
}

POPS_TEST(MovingBlockBoundMatchesTheorem2) {
  // Proposition 2: group-block permutations that move every group need
  // exactly the Theorem 2 slot count — the construction is optimal.
  for (const auto& [d, g] :
       {std::pair{2, 2}, {4, 4}, {8, 4}, {16, 4}, {32, 8}}) {
    const Topology topo(d, g);
    EXPECT_EQ(lower_bound_slots(topo, group_rotation(d, g, 1)),
              theorem2_slots(topo));
    EXPECT_EQ(
        lower_bound_slots(topo, vector_reversal(topo.processor_count())),
        theorem2_slots(topo));
  }
}

POPS_TEST(FixedBlockBoundUsesGPlusOne) {
  // Proposition 3: groups fixed, every packet displaced within its
  // group -> 2 * ceil(d / (g + 1)).
  for (const auto& [d, g] : {std::pair{4, 4}, {12, 3}, {32, 8}}) {
    const Topology topo(d, g);
    const std::vector<Permutation> within(as_size(g), cyclic_shift(d, 1));
    const Permutation pi =
        group_block(d, g, Permutation::identity(g), within);
    EXPECT_EQ(lower_bound_slots(topo, pi), 2 * ceil_div(d, g + 1));
  }
}

POPS_TEST(BoundNeverExceedsVerifiedSchedules) {
  // Soundness: for every pattern and random instance, a verified
  // Theorem 2 schedule meets or beats nothing below the bound — i.e.
  // bound <= measured <= theorem2_slots.
  Rng rng(9);
  for (const auto& [d, g] :
       {std::pair{1, 4}, {2, 2}, {4, 4}, {8, 3}, {3, 8}, {6, 4}}) {
    const Topology topo(d, g);
    RoutingEngine engine(topo);
    for (const auto pattern : kAllTrafficPatterns) {
      const Permutation pi = make_pattern(topo, pattern, 17);
      const int bound = lower_bound_slots(topo, pi);
      const FlatSchedule& schedule = engine.route_permutation(pi);
      EXPECT_TRUE(verify_schedule(topo, pi, schedule).ok);
      EXPECT_TRUE(bound <= schedule.slot_count());
    }
    for (int rep = 0; rep < 5; ++rep) {
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      EXPECT_TRUE(lower_bound_slots(topo, pi) <= theorem2_slots(topo));
    }
  }
}

POPS_TEST(HRelationBudget) {
  const Topology topo(8, 4);   // theorem2_slots = 4
  const Topology line(1, 8);   // theorem2_slots = 1
  EXPECT_EQ(h_relation_budget(topo, 0), 0);
  EXPECT_EQ(h_relation_budget(topo, 3), 12);
  EXPECT_EQ(h_relation_budget(line, 5), 5);
  EXPECT_ABORTS(h_relation_budget(topo, -1));
}

POPS_TEST(BoundRejectsWrongSize) {
  const Topology topo(4, 4);
  EXPECT_ABORTS(lower_bound_slots(topo, Permutation::identity(4)));
}

}  // namespace
}  // namespace pops
