// Bipartite multigraph with stable edge ids.
//
// The paper (Mei & Rizzi, IPDPS 2002) reduces permutation routing on
// POPS(d,g) to edge coloring a d-regular bipartite multigraph whose
// vertices are the g source groups and g destination groups and whose
// edges are the packets. Parallel edges are the common case (many
// packets share a group pair), so edges are first-class objects
// addressed by the id returned from add_edge.
#pragma once

#include <vector>

#include "support/check.h"
#include "support/span.h"
#include "support/thread_annotations.h"

namespace pops {

struct Edge {
  int left;
  int right;
};

class BipartiteMultigraph {
 public:
  BipartiteMultigraph(int left_count, int right_count)
      : left_edges_(as_size(left_count)),
        right_edges_(as_size(right_count)) {}

  /// Rebuilds the graph in place: drops every edge and resizes the
  /// vertex sets, keeping all array capacities. A graph that is reset
  /// to the same shape and refilled with the same number of edges does
  /// not allocate — this is what lets the RoutingEngine reuse one
  /// multigraph across permutations.
  void reset(int left_count, int right_count) {
    edges_.clear();
    left_edges_.resize(as_size(left_count));
    right_edges_.resize(as_size(right_count));
    for (auto& edges : left_edges_) edges.clear();
    for (auto& edges : right_edges_) edges.clear();
  }

  /// Pre-sizes the edge array and every adjacency list: refills with
  /// at most `edges` edges and at most `degree` edges per vertex never
  /// allocate. The TrafficServer calls this with its window caps so a
  /// worst-shape window late in a run cannot grow the graph.
  void reserve_edges(int edges, int degree) {
    POPS_CHECK(edges >= 0 && degree >= 0,
               "reserve_edges needs nonnegative capacities");
    edges_.reserve(as_size(edges));
    for (auto& list : left_edges_) list.reserve(as_size(degree));
    for (auto& list : right_edges_) list.reserve(as_size(degree));
  }

  /// Adds an edge and returns its id (ids are dense, in insertion
  /// order).
  int add_edge(int left, int right) {
    POPS_CHECK(left >= 0 && left < left_count(),
               "add_edge: left vertex out of range");
    POPS_CHECK(right >= 0 && right < right_count(),
               "add_edge: right vertex out of range");
    const int id = edge_count();
    edges_.push_back(Edge{left, right});
    left_edges_[as_size(left)].push_back(id);
    right_edges_[as_size(right)].push_back(id);
    return id;
  }

  int left_count() const { return static_cast<int>(left_edges_.size()); }
  int right_count() const {
    return static_cast<int>(right_edges_.size());
  }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(int id) const { return edges_[as_size(id)]; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<int>& edges_at_left(int left) const {
    return left_edges_[as_size(left)];
  }
  const std::vector<int>& edges_at_right(int right) const {
    return right_edges_[as_size(right)];
  }

  int left_degree(int left) const {
    return static_cast<int>(left_edges_[as_size(left)].size());
  }
  int right_degree(int right) const {
    return static_cast<int>(right_edges_[as_size(right)].size());
  }

  /// Maximum degree over both sides (0 for an empty graph).
  int max_degree() const;

  /// Total capacity of the edge and adjacency arrays, in elements —
  /// the zero-allocation tests compare this across reset/refill
  /// cycles.
  std::size_t scratch_capacity() const;

  /// True when every left vertex and every right vertex has the same
  /// degree (vacuously true for the empty graph).
  bool is_regular() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> left_edges_;
  std::vector<std::vector<int>> right_edges_;
};

/// Flat CSR adjacency view over combined vertex ids: left vertices
/// first ([0, L)), then right vertices ([L, L + R)). For a vertex v,
/// incidence()[offsets()[v] .. offsets()[v + 1]) lists the incident
/// edge ids.
///
/// build() views a whole multigraph; build_subset() re-derives the
/// view for an arbitrary edge subset whose endpoints live in flat
/// caller storage (the EdgeColorer's padded regularized edge array).
/// Both rebuild in place into owned flat arrays, so a view rebuilt for
/// same-sized inputs never allocates — the divide-and-conquer coloring
/// kernels call build_subset once per recursion range out of one
/// reused view instead of copying subgraphs.
///
/// Thread-compatible, not thread-safe: every build is a mutation, so
/// use one view per thread (the EdgeColorer discipline).
class POPS_THREAD_COMPATIBLE CsrAdjacency {
 public:
  /// Rebuilds the view over every edge of `graph`.
  void build(const BipartiteMultigraph& graph);

  /// Rebuilds the view over the edges listed in `edge_ids`, with
  /// endpoints read from `edges` (which must be indexable by every
  /// listed id). left_count/right_count bound the vertex ids.
  void build_subset(Span<const int> edge_ids, Span<const Edge> edges,
                    int left_count, int right_count);

  int left_count() const { return left_count_; }
  int vertex_count() const { return vertex_count_; }

  int degree(int vertex) const {
    return offset_[as_size(vertex + 1)] - offset_[as_size(vertex)];
  }
  /// offsets().size() == vertex_count() + 1.
  Span<const int> offsets() const {
    return Span<const int>(offset_.data(), offset_.size());
  }
  /// One flat array of edge ids; every built edge appears twice (once
  /// per endpoint).
  Span<const int> incidence() const {
    return Span<const int>(incident_.data(), incident_.size());
  }

  /// Capacity snapshot for the zero-allocation tests.
  std::size_t scratch_capacity() const {
    return offset_.capacity() + incident_.capacity() +
           cursor_.capacity();
  }

 private:
  void start_build(int left_count, int right_count);
  void finish_build(std::size_t incidence_size);

  std::vector<int> offset_;    // vertex_count_ + 1 entries
  std::vector<int> incident_;  // 2 * built edge count entries
  std::vector<int> cursor_;    // per-vertex fill cursor
  int left_count_ = 0;
  int vertex_count_ = 0;
};

}  // namespace pops
