#include "graph/euler_split.h"

namespace pops {
namespace {

// Combined vertex ids: left vertices are [0, L), right vertices are
// [L, L + R).
struct TrailWalker {
  explicit TrailWalker(const BipartiteMultigraph& graph)
      : graph(graph),
        left_count(graph.left_count()),
        cursor(as_size(graph.left_count() + graph.right_count()), 0),
        used(as_size(graph.edge_count()), false),
        side(as_size(graph.edge_count()), -1) {}

  int degree(int vertex) const {
    return vertex < left_count
               ? graph.left_degree(vertex)
               : graph.right_degree(vertex - left_count);
  }

  const std::vector<int>& incident(int vertex) const {
    return vertex < left_count
               ? graph.edges_at_left(vertex)
               : graph.edges_at_right(vertex - left_count);
  }

  int other_endpoint(int edge_id, int vertex) const {
    const Edge& e = graph.edge(edge_id);
    return vertex < left_count ? left_count + e.right : e.left;
  }

  // Next unused edge at vertex, or -1. cursor makes the total walk
  // linear in the number of edges.
  int next_unused(int vertex) {
    const std::vector<int>& list = incident(vertex);
    std::size_t& at = cursor[as_size(vertex)];
    while (at < list.size() && used[as_size(list[at])]) ++at;
    return at < list.size() ? list[at] : -1;
  }

  // Walks a maximal trail from start, assigning alternating sides
  // beginning with side 0.
  void walk(int start) {
    int vertex = start;
    int next_side = 0;
    while (true) {
      const int edge_id = next_unused(vertex);
      if (edge_id < 0) break;
      used[as_size(edge_id)] = true;
      side[as_size(edge_id)] = next_side;
      next_side = 1 - next_side;
      vertex = other_endpoint(edge_id, vertex);
    }
  }

  const BipartiteMultigraph& graph;
  int left_count;
  std::vector<std::size_t> cursor;
  std::vector<bool> used;
  std::vector<int> side;
};

}  // namespace

EulerSplitResult euler_split(const BipartiteMultigraph& graph) {
  TrailWalker walker(graph);
  const int vertex_count = graph.left_count() + graph.right_count();

  // Phase 1: trails out of odd-degree vertices. Each such trail ends at
  // another odd-degree vertex, and afterwards both endpoints carry an
  // imbalance of exactly 1 while every pass-through stays balanced.
  for (int v = 0; v < vertex_count; ++v) {
    if (walker.degree(v) % 2 == 1) walker.walk(v);
  }
  // Phase 2: the remaining graph has even degree everywhere, so every
  // maximal trail is a closed circuit of even length (bipartite), which
  // alternation splits exactly in half at every vertex.
  for (int v = 0; v < vertex_count; ++v) {
    while (walker.next_unused(v) >= 0) walker.walk(v);
  }

  EulerSplitResult result;
  result.side = std::move(walker.side);
  return result;
}

}  // namespace pops
