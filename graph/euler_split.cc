#include "graph/euler_split.h"

namespace pops {

// Next unused edge at vertex, or -1. The cursor makes the total walk
// linear in the number of edges.
int EulerSplitKernel::next_unused(const CsrAdjacency& adj, int vertex) {
  const int* incident = adj.incidence().data();
  const int end = adj.offsets()[as_size(vertex + 1)];
  int& at = cursor_[as_size(vertex)];
  while (at < end && used_stamp_[as_size(incident[at])] == epoch_) ++at;
  return at < end ? incident[at] : -1;
}

// Walks a maximal trail from start, assigning alternating sides
// beginning with side 0.
void EulerSplitKernel::walk(const CsrAdjacency& adj, const Edge* edges,
                            int start, int* side) {
  const int left_count = adj.left_count();
  int vertex = start;
  int next_side = 0;
  while (true) {
    const int edge_id = next_unused(adj, vertex);
    if (edge_id < 0) break;
    used_stamp_[as_size(edge_id)] = epoch_;
    side[edge_id] = next_side;
    next_side = 1 - next_side;
    const Edge& e = edges[edge_id];
    vertex = vertex < left_count ? left_count + e.right : e.left;
  }
}

void EulerSplitKernel::split(const CsrAdjacency& adj,
                             Span<const Edge> edges, Span<int> side) {
  const int vertex_count = adj.vertex_count();
  ++epoch_;
  // Stamps never need clearing: an entry is "used" only when it holds
  // the current epoch. resize keeps old stamps valid (always < epoch_)
  // and zero-fills growth.
  if (used_stamp_.size() < edges.size()) {
    used_stamp_.resize(edges.size(), 0);
  }
  cursor_.assign(adj.offsets().begin(), adj.offsets().end() - 1);
  const Edge* endpoint = edges.data();
  int* out = side.data();

  // Phase 1: trails out of odd-degree vertices. Each such trail ends at
  // another odd-degree vertex, and afterwards both endpoints carry an
  // imbalance of exactly 1 while every pass-through stays balanced.
  for (int v = 0; v < vertex_count; ++v) {
    if (adj.degree(v) % 2 == 1) walk(adj, endpoint, v, out);
  }
  // Phase 2: the remaining graph has even degree everywhere, so every
  // maximal trail is a closed circuit of even length (bipartite), which
  // alternation splits exactly in half at every vertex.
  for (int v = 0; v < vertex_count; ++v) {
    while (next_unused(adj, v) >= 0) walk(adj, endpoint, v, out);
  }
}

EulerSplitResult euler_split(const BipartiteMultigraph& graph) {
  CsrAdjacency adj;
  adj.build(graph);
  EulerSplitKernel kernel;
  EulerSplitResult result;
  result.side.assign(as_size(graph.edge_count()), -1);
  kernel.split(adj, Span<const Edge>(graph.edges()), result.side);
  return result;
}

}  // namespace pops
