#include "graph/edge_coloring.h"

#include <algorithm>

namespace pops {

std::string to_string(ColoringAlgorithm algorithm) {
  switch (algorithm) {
    case ColoringAlgorithm::kAlternatingPath:
      return "alternating-path";
    case ColoringAlgorithm::kEulerSplit:
      return "euler-split";
    case ColoringAlgorithm::kMatchingPeel:
      return "matching-peel";
    case ColoringAlgorithm::kCircuitPeel:
      return "circuit-peel";
  }
  POPS_CHECK(false, "unknown ColoringAlgorithm");
  return "";
}

void EdgeColorer::color(const BipartiteMultigraph& graph,
                        ColoringAlgorithm algorithm, EdgeColoring& out) {
  const int delta = graph.max_degree();
  if (delta == 0) {
    out.color.clear();
    out.num_colors = 0;
    return;
  }
  switch (algorithm) {
    case ColoringAlgorithm::kAlternatingPath:
      color_alternating(graph, delta, out);
      return;
    case ColoringAlgorithm::kEulerSplit:
      color_dnc(graph, delta, /*bottom_degree=*/1, out);
      return;
    case ColoringAlgorithm::kMatchingPeel:
      color_matching_peel(graph, delta, out);
      return;
    case ColoringAlgorithm::kCircuitPeel:
      color_dnc(graph, delta, /*bottom_degree=*/2, out);
      return;
  }
  POPS_CHECK(false, "unknown ColoringAlgorithm");
}

// ---------------------------------------------------------------------
// Divide-and-conquer backends on flat scratch.
//
// setup_regular pads the input to a delta-regular multigraph on
// max(L, R) + max(L, R) vertices inside dc_edges_ (original edge ids
// preserved, dummy edges get ids >= edge_count). From then on every
// step works on a range [lo, hi) of dc_work_, a permutation of padded
// edge ids: Euler splits partition a range in place, matching peels
// compact it, and an explicit DncRange stack replaces the recursion.
// ---------------------------------------------------------------------

int EdgeColorer::setup_regular(const BipartiteMultigraph& graph,
                               int delta) {
  const int n = std::max(graph.left_count(), graph.right_count());
  const int m = graph.edge_count();
  const int m_pad = delta * n;
  regular_n_ = n;
  dc_edges_.resize(as_size(m_pad));
  dc_deg_left_.assign(as_size(n), 0);
  dc_deg_right_.assign(as_size(n), 0);
  const Edge* src = graph.edges().data();
  Edge* edges = dc_edges_.data();
  int* deg_left = dc_deg_left_.data();
  int* deg_right = dc_deg_right_.data();
  for (int e = 0; e < m; ++e) {
    edges[e] = src[e];
    ++deg_left[src[e].left];
    ++deg_right[src[e].right];
  }
  int next_id = m;
  int right = 0;
  for (int left = 0; left < n; ++left) {
    while (deg_left[left] < delta) {
      while (right < n && deg_right[right] >= delta) ++right;
      POPS_CHECK(right < n,
                 "regularize: right side has no deficit left");
      edges[next_id++] = Edge{left, right};
      ++deg_left[left];
      ++deg_right[right];
    }
  }
  POPS_CHECK(next_id == m_pad, "regularize: padded edge count mismatch");
  dc_color_.assign(as_size(m_pad), -1);
  dc_work_.resize(as_size(m_pad));
  for (int e = 0; e < m_pad; ++e) dc_work_[as_size(e)] = e;
  dc_aux_.resize(as_size(m_pad));
  dc_side_.resize(as_size(m_pad));
  return m_pad;
}

void EdgeColorer::build_range_view(int lo, int hi) {
  dc_adj_.build_subset(
      Span<const int>(dc_work_.data() + lo, as_size(hi - lo)),
      Span<const Edge>(dc_edges_), regular_n_, regular_n_);
}

// Euler-splits the range's edges, writing dc_side_[edge id] for every
// edge in [lo, hi).
void EdgeColorer::split_range(int lo, int hi) {
  build_range_view(lo, hi);
  dc_euler_.split(dc_adj_, Span<const Edge>(dc_edges_),
                  Span<int>(dc_side_));
}

// Peels one perfect matching off the range (a regular bipartite
// multigraph always has one), colors the matched edges, compacts the
// rest to the front, and returns the new range end.
int EdgeColorer::peel_matching(int lo, int hi, int color_value) {
  build_range_view(lo, hi);
  const int size =
      dc_matching_.match(dc_adj_, Span<const Edge>(dc_edges_));
  POPS_CHECK(size == regular_n_,
             "regular multigraph without a perfect matching");
  const int* match_left = dc_matching_.left_edges().data();
  const Edge* edges = dc_edges_.data();
  int* color = dc_color_.data();
  int* work = dc_work_.data();
  int write = lo;
  for (int i = lo; i < hi; ++i) {
    const int e = work[i];
    if (match_left[edges[e].left] == e) {
      color[e] = color_value;
    } else {
      work[write++] = e;
    }
  }
  return write;
}

void EdgeColorer::color_dnc(const BipartiteMultigraph& graph, int delta,
                            int bottom_degree, EdgeColoring& out) {
  const int m_pad = setup_regular(graph, delta);
  dc_stack_.reserve(64);
  dc_stack_.clear();
  if (m_pad > 0) dc_stack_.push_back(DncRange{0, m_pad, delta, 0});
  int* color = dc_color_.data();
  int* work = dc_work_.data();
  const int* side = dc_side_.data();
  while (!dc_stack_.empty()) {
    const DncRange range = dc_stack_.back();
    dc_stack_.pop_back();
    if (range.lo >= range.hi) continue;
    if (range.delta == 1) {
      for (int i = range.lo; i < range.hi; ++i) {
        color[work[i]] = range.base;
      }
      continue;
    }
    if (range.delta == 2 && bottom_degree == 2) {
      // 2-regular components are even circuits; alternation along each
      // circuit is a proper 2-coloring.
      split_range(range.lo, range.hi);
      for (int i = range.lo; i < range.hi; ++i) {
        const int e = work[i];
        color[e] = range.base + side[e];
      }
      continue;
    }
    if (range.delta % 2 == 1) {
      // Peel one perfect matching, then continue on the even-degree
      // remainder.
      const int new_hi = peel_matching(range.lo, range.hi,
                                       range.base + range.delta - 1);
      dc_stack_.push_back(
          DncRange{range.lo, new_hi, range.delta - 1, range.base});
      continue;
    }
    // Even degree: Euler split into two exactly (delta/2)-regular
    // halves; stable-partition the work range by side (side 0 compacts
    // in place, side 1 spills through dc_aux_).
    split_range(range.lo, range.hi);
    int* aux = dc_aux_.data();
    int write = range.lo;
    int spill = 0;
    for (int i = range.lo; i < range.hi; ++i) {
      const int e = work[i];
      if (side[e] == 0) {
        work[write++] = e;
      } else {
        aux[spill++] = e;
      }
    }
    std::copy(aux, aux + spill, work + write);
    const int mid = write;
    POPS_CHECK(mid - range.lo == (range.hi - range.lo) / 2,
               "euler split: uneven halves of a regular range");
    dc_stack_.push_back(DncRange{mid, range.hi, range.delta / 2,
                                 range.base + range.delta / 2});
    dc_stack_.push_back(
        DncRange{range.lo, mid, range.delta / 2, range.base});
  }
  finish_dnc(graph, delta, out);
}

void EdgeColorer::color_matching_peel(const BipartiteMultigraph& graph,
                                      int delta, EdgeColoring& out) {
  int hi = setup_regular(graph, delta);
  for (int round = 0; round < delta; ++round) {
    hi = peel_matching(0, hi, round);
  }
  POPS_CHECK(hi == 0, "matching peel left uncolored edges");
  finish_dnc(graph, delta, out);
}

// Drops the dummy padding edges (their ids come after the real ones).
void EdgeColorer::finish_dnc(const BipartiteMultigraph& graph, int delta,
                             EdgeColoring& out) {
  out.color.assign(dc_color_.begin(),
                   dc_color_.begin() + graph.edge_count());
  out.num_colors = delta;
}

// ---------------------------------------------------------------------
// Alternating-path backend (constructive König proof) on reusable flat
// scratch, plus the fair-distribution rebalancer.
// ---------------------------------------------------------------------

void EdgeColorer::color_alternating(const BipartiteMultigraph& graph,
                                    int delta, EdgeColoring& out) {
  out.num_colors = delta;
  out.color.assign(as_size(graph.edge_count()), -1);
  left_slot_.assign(as_size(graph.left_count()) * as_size(delta), -1);
  right_slot_.assign(as_size(graph.right_count()) * as_size(delta), -1);
  // An alternating path visits each vertex at most once.
  path_.reserve(as_size(graph.left_count() + graph.right_count()));
  for (int e = 0; e < graph.edge_count(); ++e) {
    insert_edge(graph, delta, e, out);
  }
}

namespace {

inline int free_color_in(const std::vector<int>& slots, int vertex,
                         int delta) {
  const std::size_t base = as_size(vertex) * as_size(delta);
  for (int c = 0; c < delta; ++c) {
    if (slots[base + as_size(c)] < 0) return c;
  }
  POPS_CHECK(false, "no free color at a vertex with degree < Delta");
  return -1;
}

}  // namespace

void EdgeColorer::insert_edge(const BipartiteMultigraph& graph,
                              int delta, int e, EdgeColoring& out) {
  const int u = graph.edge(e).left;
  const int v = graph.edge(e).right;
  const int alpha = free_color_in(left_slot_, u, delta);
  const int beta = free_color_in(right_slot_, v, delta);
  if (alpha != beta &&
      right_slot_[as_size(v) * as_size(delta) + as_size(alpha)] >= 0) {
    flip_path(graph, delta, v, alpha, beta, out);
  }
  // alpha is now free at both endpoints: at u it always was, and at v
  // either it already was or the flipped path freed it (the path
  // cannot reach u — it would have to arrive there on an alpha edge,
  // which u does not have, and parity rules out arriving on beta).
  assign_color(delta, e, u, v, alpha, out);
}

// Flips the maximal alpha/beta alternating path that starts at right
// vertex v with its alpha edge.
void EdgeColorer::flip_path(const BipartiteMultigraph& graph, int delta,
                            int v, int alpha, int beta,
                            EdgeColoring& out) {
  path_.clear();
  bool on_right = true;
  int vertex = v;
  int want = alpha;
  while (true) {
    const auto& slots = on_right ? right_slot_ : left_slot_;
    const int e = slots[as_size(vertex) * as_size(delta) + as_size(want)];
    if (e < 0) break;
    path_.push_back(e);
    vertex = on_right ? graph.edge(e).left : graph.edge(e).right;
    on_right = !on_right;
    want = want == alpha ? beta : alpha;
  }
  for (const int e : path_) {
    const int c = out.color[as_size(e)];
    left_slot_[as_size(graph.edge(e).left) * as_size(delta) +
               as_size(c)] = -1;
    right_slot_[as_size(graph.edge(e).right) * as_size(delta) +
                as_size(c)] = -1;
  }
  for (const int e : path_) {
    const int c = out.color[as_size(e)] == alpha ? beta : alpha;
    assign_color(delta, e, graph.edge(e).left, graph.edge(e).right, c,
                 out);
  }
}

void EdgeColorer::assign_color(int delta, int e, int u, int v, int c,
                               EdgeColoring& out) {
  const std::size_t left_index = as_size(u) * as_size(delta) + as_size(c);
  const std::size_t right_index =
      as_size(v) * as_size(delta) + as_size(c);
  POPS_CHECK(left_slot_[left_index] < 0 && right_slot_[right_index] < 0,
             "alternating-path: color slot already taken");
  out.color[as_size(e)] = c;
  left_slot_[left_index] = e;
  right_slot_[right_index] = e;
}

void EdgeColorer::spread(const BipartiteMultigraph& graph,
                         int num_classes, EdgeColoring& coloring) {
  POPS_CHECK(num_classes >= std::max(1, coloring.num_colors),
             "spread_colors: fewer classes than existing colors");
  coloring.num_colors = num_classes;
  const int edge_count = graph.edge_count();
  sizes_.assign(as_size(num_classes), 0);
  for (const int c : coloring.color) ++sizes_[as_size(c)];

  const int vertex_count = graph.left_count() + graph.right_count();
  slot_a_.resize(as_size(vertex_count));
  slot_b_.resize(as_size(vertex_count));
  spread_path_.reserve(as_size(edge_count));

  // Each pass moves one edge from a largest class to a smallest class
  // by flipping an alternating path, so the spread shrinks steadily;
  // the iteration bound is a safety net, not a tuning knob.
  const long long limit =
      2LL * static_cast<long long>(edge_count) * num_classes + 16;
  for (long long iteration = 0;; ++iteration) {
    POPS_CHECK(iteration <= limit, "spread_colors failed to converge");
    const int a = static_cast<int>(
        std::max_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
    const int b = static_cast<int>(
        std::min_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
    if (sizes_[as_size(a)] - sizes_[as_size(b)] <= 1) break;

    // Build the a/b two-colored subgraph: at most one edge of each
    // class per vertex, so components are paths and even cycles.
    std::fill(slot_a_.begin(), slot_a_.end(), -1);
    std::fill(slot_b_.begin(), slot_b_.end(), -1);
    for (int e = 0; e < edge_count; ++e) {
      const int c = coloring.color[as_size(e)];
      if (c != a && c != b) continue;
      const int u = graph.edge(e).left;
      const int v = graph.left_count() + graph.edge(e).right;
      auto& slots = c == a ? slot_a_ : slot_b_;
      slots[as_size(u)] = e;
      slots[as_size(v)] = e;
    }

    // Cycles carry equally many a- and b-edges, so some PATH has one
    // more a-edge than b-edges. The a/b components are vertex-disjoint,
    // so we can flip several such paths in one scan — up to gap/2 of
    // them, which leaves the pair balanced instead of paying a full
    // subgraph rebuild per single edge moved.
    int flips_left = (sizes_[as_size(a)] - sizes_[as_size(b)]) / 2;
    bool flipped = false;
    walked_.assign(as_size(edge_count), 0);
    for (int start = 0; start < vertex_count && flips_left > 0;
         ++start) {
      const bool has_a = slot_a_[as_size(start)] >= 0;
      const bool has_b = slot_b_[as_size(start)] >= 0;
      if (has_a == has_b) continue;  // not a path endpoint
      if (!has_a) continue;  // paths with extra a-edges start on a
      if (walked_[as_size(slot_a_[as_size(start)])] != 0) continue;
      int vertex = start;
      int want_a = 1;
      spread_path_.clear();
      while (true) {
        const auto& slots = want_a ? slot_a_ : slot_b_;
        const int e = slots[as_size(vertex)];
        if (e < 0) break;
        if (!spread_path_.empty() && e == spread_path_.back()) break;
        spread_path_.push_back(e);
        walked_[as_size(e)] = 1;
        const int u = graph.edge(e).left;
        const int v = graph.left_count() + graph.edge(e).right;
        vertex = vertex == u ? v : u;
        want_a = 1 - want_a;
      }
      if (spread_path_.size() % 2 == 0) continue;  // balanced path
      for (const int e : spread_path_) {
        coloring.color[as_size(e)] =
            coloring.color[as_size(e)] == a ? b : a;
      }
      sizes_[as_size(a)] -= 1;
      sizes_[as_size(b)] += 1;
      --flips_left;
      flipped = true;
    }
    POPS_CHECK(flipped, "spread_colors: no augmenting path found");
  }
}

std::size_t EdgeColorer::scratch_capacity() const {
  return left_slot_.capacity() + right_slot_.capacity() +
         path_.capacity() + sizes_.capacity() + slot_a_.capacity() +
         slot_b_.capacity() + walked_.capacity() +
         spread_path_.capacity() + dc_edges_.capacity() +
         dc_color_.capacity() + dc_work_.capacity() +
         dc_aux_.capacity() + dc_side_.capacity() +
         dc_deg_left_.capacity() + dc_deg_right_.capacity() +
         dc_stack_.capacity() + dc_adj_.scratch_capacity() +
         dc_euler_.scratch_capacity() + dc_matching_.scratch_capacity();
}

EdgeColoring color_edges(const BipartiteMultigraph& graph,
                         ColoringAlgorithm algorithm) {
  EdgeColorer colorer;
  EdgeColoring out;
  colorer.color(graph, algorithm, out);
  return out;
}

EdgeColoring spread_colors(const BipartiteMultigraph& graph,
                           const EdgeColoring& coloring,
                           int num_classes) {
  EdgeColorer colorer;
  EdgeColoring result = coloring;
  colorer.spread(graph, num_classes, result);
  return result;
}

}  // namespace pops
