#include "graph/edge_coloring.h"

#include <algorithm>
#include <utility>

#include "graph/euler_split.h"
#include "graph/hopcroft_karp.h"

namespace pops {
namespace {

// ---------------------------------------------------------------------
// alternating-path backend (constructive König proof).
// ---------------------------------------------------------------------

class AlternatingPathColorer {
 public:
  AlternatingPathColorer(const BipartiteMultigraph& graph, int delta)
      : graph_(graph),
        delta_(delta),
        color_(as_size(graph.edge_count()), -1),
        left_slot_(as_size(graph.left_count()),
                   std::vector<int>(as_size(delta), -1)),
        right_slot_(as_size(graph.right_count()),
                    std::vector<int>(as_size(delta), -1)) {}

  EdgeColoring run() {
    for (int e = 0; e < graph_.edge_count(); ++e) insert(e);
    return EdgeColoring{std::move(color_), delta_};
  }

 private:
  int free_color_at(const std::vector<int>& slots) const {
    for (int c = 0; c < delta_; ++c) {
      if (slots[as_size(c)] < 0) return c;
    }
    POPS_CHECK(false, "no free color at a vertex with degree < Delta");
    return -1;
  }

  void insert(int e) {
    const int u = graph_.edge(e).left;
    const int v = graph_.edge(e).right;
    const int alpha = free_color_at(left_slot_[as_size(u)]);
    const int beta = free_color_at(right_slot_[as_size(v)]);
    if (alpha != beta && right_slot_[as_size(v)][as_size(alpha)] >= 0) {
      flip_path(v, alpha, beta);
    }
    // alpha is now free at both endpoints: at u it always was, and at v
    // either it already was or the flipped path freed it (the path
    // cannot reach u — it would have to arrive there on an alpha edge,
    // which u does not have, and parity rules out arriving on beta).
    assign(e, u, v, alpha);
  }

  // Flips the maximal alpha/beta alternating path that starts at right
  // vertex v with its alpha edge.
  void flip_path(int v, int alpha, int beta) {
    path_.clear();
    bool on_right = true;
    int vertex = v;
    int want = alpha;
    while (true) {
      const int e = on_right ? right_slot_[as_size(vertex)][as_size(want)]
                             : left_slot_[as_size(vertex)][as_size(want)];
      if (e < 0) break;
      path_.push_back(e);
      vertex = on_right ? graph_.edge(e).left : graph_.edge(e).right;
      on_right = !on_right;
      want = want == alpha ? beta : alpha;
    }
    for (const int e : path_) {
      const int c = color_[as_size(e)];
      left_slot_[as_size(graph_.edge(e).left)][as_size(c)] = -1;
      right_slot_[as_size(graph_.edge(e).right)][as_size(c)] = -1;
    }
    for (const int e : path_) {
      const int c = color_[as_size(e)] == alpha ? beta : alpha;
      assign(e, graph_.edge(e).left, graph_.edge(e).right, c);
    }
  }

  void assign(int e, int u, int v, int c) {
    POPS_CHECK(left_slot_[as_size(u)][as_size(c)] < 0 &&
                   right_slot_[as_size(v)][as_size(c)] < 0,
               "alternating-path: color slot already taken");
    color_[as_size(e)] = c;
    left_slot_[as_size(u)][as_size(c)] = e;
    right_slot_[as_size(v)][as_size(c)] = e;
  }

  const BipartiteMultigraph& graph_;
  int delta_;
  std::vector<int> color_;
  std::vector<std::vector<int>> left_slot_;
  std::vector<std::vector<int>> right_slot_;
  std::vector<int> path_;
};

// ---------------------------------------------------------------------
// Regularization + divide-and-conquer backends.
// ---------------------------------------------------------------------

// Pads the graph to a Delta-regular multigraph on max(L, R) + max(L, R)
// vertices. Original edge ids are preserved; dummy edges get the ids
// >= graph.edge_count().
BipartiteMultigraph regularize(const BipartiteMultigraph& graph,
                               int delta) {
  const int n = std::max(graph.left_count(), graph.right_count());
  BipartiteMultigraph regular(n, n);
  for (const Edge& e : graph.edges()) regular.add_edge(e.left, e.right);
  int right = 0;
  for (int left = 0; left < n; ++left) {
    while (regular.left_degree(left) < delta) {
      while (right < n && regular.right_degree(right) >= delta) ++right;
      POPS_CHECK(right < n, "regularize: right side has no deficit left");
      regular.add_edge(left, right);
    }
  }
  return regular;
}

struct Subgraph {
  BipartiteMultigraph graph;
  std::vector<int> to_master;  // subgraph edge id -> master edge id
};

Subgraph full_subgraph(const BipartiteMultigraph& master) {
  Subgraph sub{BipartiteMultigraph(master.left_count(),
                                   master.right_count()),
               {}};
  sub.to_master.reserve(as_size(master.edge_count()));
  for (int id = 0; id < master.edge_count(); ++id) {
    sub.graph.add_edge(master.edge(id).left, master.edge(id).right);
    sub.to_master.push_back(id);
  }
  return sub;
}

// Peels one perfect matching off `sub` (a regular bipartite multigraph
// always has one), records `color_value` for the matched edges, and
// returns the remainder, whose regular degree is one lower.
Subgraph peel_perfect_matching(const Subgraph& sub, int color_value,
                               std::vector<int>& master_color) {
  const MatchingResult matching = maximum_matching(sub.graph);
  POPS_CHECK(matching.is_perfect(sub.graph),
             "regular multigraph without a perfect matching");
  std::vector<bool> matched(as_size(sub.graph.edge_count()), false);
  for (const int e : matching.left_edge) {
    POPS_CHECK(e >= 0, "perfect matching left a vertex unmatched");
    matched[as_size(e)] = true;
    master_color[as_size(sub.to_master[as_size(e)])] = color_value;
  }
  Subgraph rest{BipartiteMultigraph(sub.graph.left_count(),
                                    sub.graph.right_count()),
                {}};
  rest.to_master.reserve(
      as_size(sub.graph.edge_count() - matching.size));
  for (int e = 0; e < sub.graph.edge_count(); ++e) {
    if (!matched[as_size(e)]) {
      rest.graph.add_edge(sub.graph.edge(e).left,
                          sub.graph.edge(e).right);
      rest.to_master.push_back(sub.to_master[as_size(e)]);
    }
  }
  return rest;
}

// Recursively colors a delta-regular (on its support) multigraph whose
// edges map back to master ids, writing colors [base, base + delta).
// bottom_degree is 1 for the euler-split backend and 2 for circuit-peel
// (which two-colors the final circuits directly by alternation).
void color_regular_recursive(const Subgraph& sub, int delta, int base,
                             int bottom_degree,
                             std::vector<int>& master_color) {
  if (sub.graph.edge_count() == 0) return;
  if (delta == 1) {
    for (const int id : sub.to_master) master_color[as_size(id)] = base;
    return;
  }
  if (delta == 2 && bottom_degree == 2) {
    // 2-regular components are even circuits; alternation along each
    // circuit is a proper 2-coloring.
    const EulerSplitResult split = euler_split(sub.graph);
    for (int e = 0; e < sub.graph.edge_count(); ++e) {
      master_color[as_size(sub.to_master[as_size(e)])] =
          base + split.side[as_size(e)];
    }
    return;
  }
  if (delta % 2 == 1) {
    // Peel one perfect matching, then recurse on the even-degree
    // remainder.
    color_regular_recursive(
        peel_perfect_matching(sub, base + delta - 1, master_color),
        delta - 1, base, bottom_degree, master_color);
    return;
  }
  // Even degree: Euler split into two exactly (delta/2)-regular halves.
  const EulerSplitResult split = euler_split(sub.graph);
  BipartiteMultigraph halves[2] = {
      BipartiteMultigraph(sub.graph.left_count(),
                          sub.graph.right_count()),
      BipartiteMultigraph(sub.graph.left_count(),
                          sub.graph.right_count())};
  std::vector<int> maps[2];
  for (int e = 0; e < sub.graph.edge_count(); ++e) {
    const int s = split.side[as_size(e)];
    halves[s].add_edge(sub.graph.edge(e).left, sub.graph.edge(e).right);
    maps[s].push_back(sub.to_master[as_size(e)]);
  }
  color_regular_recursive(
      Subgraph{std::move(halves[0]), std::move(maps[0])}, delta / 2,
      base, bottom_degree, master_color);
  color_regular_recursive(
      Subgraph{std::move(halves[1]), std::move(maps[1])}, delta / 2,
      base + delta / 2, bottom_degree, master_color);
}

EdgeColoring color_via_splits(const BipartiteMultigraph& graph, int delta,
                              int bottom_degree) {
  const BipartiteMultigraph regular = regularize(graph, delta);
  std::vector<int> padded_color(as_size(regular.edge_count()), -1);
  color_regular_recursive(full_subgraph(regular), delta, 0,
                          bottom_degree, padded_color);
  padded_color.resize(as_size(graph.edge_count()));
  return EdgeColoring{std::move(padded_color), delta};
}

EdgeColoring color_by_matching_peel(const BipartiteMultigraph& graph,
                                    int delta) {
  const BipartiteMultigraph regular = regularize(graph, delta);
  std::vector<int> padded_color(as_size(regular.edge_count()), -1);
  Subgraph remaining = full_subgraph(regular);
  for (int round = 0; round < delta; ++round) {
    remaining = peel_perfect_matching(remaining, round, padded_color);
  }
  padded_color.resize(as_size(graph.edge_count()));
  return EdgeColoring{std::move(padded_color), delta};
}

}  // namespace

std::string to_string(ColoringAlgorithm algorithm) {
  switch (algorithm) {
    case ColoringAlgorithm::kAlternatingPath:
      return "alternating-path";
    case ColoringAlgorithm::kEulerSplit:
      return "euler-split";
    case ColoringAlgorithm::kMatchingPeel:
      return "matching-peel";
    case ColoringAlgorithm::kCircuitPeel:
      return "circuit-peel";
  }
  POPS_CHECK(false, "unknown ColoringAlgorithm");
  return "";
}

EdgeColoring color_edges(const BipartiteMultigraph& graph,
                         ColoringAlgorithm algorithm) {
  const int delta = graph.max_degree();
  if (delta == 0) return EdgeColoring{{}, 0};
  switch (algorithm) {
    case ColoringAlgorithm::kAlternatingPath:
      return AlternatingPathColorer(graph, delta).run();
    case ColoringAlgorithm::kEulerSplit:
      return color_via_splits(graph, delta, /*bottom_degree=*/1);
    case ColoringAlgorithm::kMatchingPeel:
      return color_by_matching_peel(graph, delta);
    case ColoringAlgorithm::kCircuitPeel:
      return color_via_splits(graph, delta, /*bottom_degree=*/2);
  }
  POPS_CHECK(false, "unknown ColoringAlgorithm");
  return EdgeColoring{};
}

EdgeColoring spread_colors(const BipartiteMultigraph& graph,
                           const EdgeColoring& coloring,
                           int num_classes) {
  POPS_CHECK(num_classes >= std::max(1, coloring.num_colors),
             "spread_colors: fewer classes than existing colors");
  EdgeColoring result{coloring.color, num_classes};
  const int edge_count = graph.edge_count();
  std::vector<int> sizes(as_size(num_classes), 0);
  for (const int c : result.color) ++sizes[as_size(c)];

  const int vertex_count = graph.left_count() + graph.right_count();
  std::vector<int> slot_a(as_size(vertex_count));
  std::vector<int> slot_b(as_size(vertex_count));

  // Each pass moves one edge from a largest class to a smallest class
  // by flipping an alternating path, so the spread shrinks steadily;
  // the iteration bound is a safety net, not a tuning knob.
  const long long limit =
      2LL * static_cast<long long>(edge_count) * num_classes + 16;
  for (long long iteration = 0;; ++iteration) {
    POPS_CHECK(iteration <= limit, "spread_colors failed to converge");
    const int a = static_cast<int>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
    const int b = static_cast<int>(
        std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    if (sizes[as_size(a)] - sizes[as_size(b)] <= 1) break;

    // Build the a/b two-colored subgraph: at most one edge of each
    // class per vertex, so components are paths and even cycles.
    std::fill(slot_a.begin(), slot_a.end(), -1);
    std::fill(slot_b.begin(), slot_b.end(), -1);
    for (int e = 0; e < edge_count; ++e) {
      const int c = result.color[as_size(e)];
      if (c != a && c != b) continue;
      const int u = graph.edge(e).left;
      const int v = graph.left_count() + graph.edge(e).right;
      auto& slots = c == a ? slot_a : slot_b;
      slots[as_size(u)] = e;
      slots[as_size(v)] = e;
    }

    // Cycles carry equally many a- and b-edges, so some PATH has one
    // more a-edge than b-edges. The a/b components are vertex-disjoint,
    // so we can flip several such paths in one scan — up to gap/2 of
    // them, which leaves the pair balanced instead of paying a full
    // subgraph rebuild per single edge moved.
    int flips_left = (sizes[as_size(a)] - sizes[as_size(b)]) / 2;
    bool flipped = false;
    std::vector<bool> walked(as_size(edge_count), false);
    for (int start = 0; start < vertex_count && flips_left > 0;
         ++start) {
      const bool has_a = slot_a[as_size(start)] >= 0;
      const bool has_b = slot_b[as_size(start)] >= 0;
      if (has_a == has_b) continue;  // not a path endpoint
      if (!has_a) continue;  // paths with extra a-edges start on a
      if (walked[as_size(slot_a[as_size(start)])]) continue;
      int vertex = start;
      int want_a = 1;
      std::vector<int> path;
      while (true) {
        const auto& slots = want_a ? slot_a : slot_b;
        const int e = slots[as_size(vertex)];
        if (e < 0) break;
        if (!path.empty() && e == path.back()) break;
        path.push_back(e);
        walked[as_size(e)] = true;
        const int u = graph.edge(e).left;
        const int v = graph.left_count() + graph.edge(e).right;
        vertex = vertex == u ? v : u;
        want_a = 1 - want_a;
      }
      if (path.size() % 2 == 0) continue;  // balanced path
      for (const int e : path) {
        result.color[as_size(e)] = result.color[as_size(e)] == a ? b : a;
      }
      sizes[as_size(a)] -= 1;
      sizes[as_size(b)] += 1;
      --flips_left;
      flipped = true;
    }
    POPS_CHECK(flipped, "spread_colors: no augmenting path found");
  }
  return result;
}

}  // namespace pops
