#include "graph/edge_coloring.h"

#include <algorithm>
#include <utility>

#include "graph/euler_split.h"
#include "graph/hopcroft_karp.h"

namespace pops {
namespace {

// ---------------------------------------------------------------------
// Regularization + divide-and-conquer backends.
// ---------------------------------------------------------------------

// Pads the graph to a Delta-regular multigraph on max(L, R) + max(L, R)
// vertices. Original edge ids are preserved; dummy edges get the ids
// >= graph.edge_count().
BipartiteMultigraph regularize(const BipartiteMultigraph& graph,
                               int delta) {
  const int n = std::max(graph.left_count(), graph.right_count());
  BipartiteMultigraph regular(n, n);
  for (const Edge& e : graph.edges()) regular.add_edge(e.left, e.right);
  int right = 0;
  for (int left = 0; left < n; ++left) {
    while (regular.left_degree(left) < delta) {
      while (right < n && regular.right_degree(right) >= delta) ++right;
      POPS_CHECK(right < n, "regularize: right side has no deficit left");
      regular.add_edge(left, right);
    }
  }
  return regular;
}

struct Subgraph {
  BipartiteMultigraph graph;
  std::vector<int> to_master;  // subgraph edge id -> master edge id
};

Subgraph full_subgraph(const BipartiteMultigraph& master) {
  Subgraph sub{BipartiteMultigraph(master.left_count(),
                                   master.right_count()),
               {}};
  sub.to_master.reserve(as_size(master.edge_count()));
  for (int id = 0; id < master.edge_count(); ++id) {
    sub.graph.add_edge(master.edge(id).left, master.edge(id).right);
    sub.to_master.push_back(id);
  }
  return sub;
}

// Peels one perfect matching off `sub` (a regular bipartite multigraph
// always has one), records `color_value` for the matched edges, and
// returns the remainder, whose regular degree is one lower.
Subgraph peel_perfect_matching(const Subgraph& sub, int color_value,
                               std::vector<int>& master_color) {
  const MatchingResult matching = maximum_matching(sub.graph);
  POPS_CHECK(matching.is_perfect(sub.graph),
             "regular multigraph without a perfect matching");
  std::vector<bool> matched(as_size(sub.graph.edge_count()), false);
  for (const int e : matching.left_edge) {
    POPS_CHECK(e >= 0, "perfect matching left a vertex unmatched");
    matched[as_size(e)] = true;
    master_color[as_size(sub.to_master[as_size(e)])] = color_value;
  }
  Subgraph rest{BipartiteMultigraph(sub.graph.left_count(),
                                    sub.graph.right_count()),
                {}};
  rest.to_master.reserve(
      as_size(sub.graph.edge_count() - matching.size));
  for (int e = 0; e < sub.graph.edge_count(); ++e) {
    if (!matched[as_size(e)]) {
      rest.graph.add_edge(sub.graph.edge(e).left,
                          sub.graph.edge(e).right);
      rest.to_master.push_back(sub.to_master[as_size(e)]);
    }
  }
  return rest;
}

// Recursively colors a delta-regular (on its support) multigraph whose
// edges map back to master ids, writing colors [base, base + delta).
// bottom_degree is 1 for the euler-split backend and 2 for circuit-peel
// (which two-colors the final circuits directly by alternation).
void color_regular_recursive(const Subgraph& sub, int delta, int base,
                             int bottom_degree,
                             std::vector<int>& master_color) {
  if (sub.graph.edge_count() == 0) return;
  if (delta == 1) {
    for (const int id : sub.to_master) master_color[as_size(id)] = base;
    return;
  }
  if (delta == 2 && bottom_degree == 2) {
    // 2-regular components are even circuits; alternation along each
    // circuit is a proper 2-coloring.
    const EulerSplitResult split = euler_split(sub.graph);
    for (int e = 0; e < sub.graph.edge_count(); ++e) {
      master_color[as_size(sub.to_master[as_size(e)])] =
          base + split.side[as_size(e)];
    }
    return;
  }
  if (delta % 2 == 1) {
    // Peel one perfect matching, then recurse on the even-degree
    // remainder.
    color_regular_recursive(
        peel_perfect_matching(sub, base + delta - 1, master_color),
        delta - 1, base, bottom_degree, master_color);
    return;
  }
  // Even degree: Euler split into two exactly (delta/2)-regular halves.
  const EulerSplitResult split = euler_split(sub.graph);
  BipartiteMultigraph halves[2] = {
      BipartiteMultigraph(sub.graph.left_count(),
                          sub.graph.right_count()),
      BipartiteMultigraph(sub.graph.left_count(),
                          sub.graph.right_count())};
  std::vector<int> maps[2];
  for (int e = 0; e < sub.graph.edge_count(); ++e) {
    const int s = split.side[as_size(e)];
    halves[s].add_edge(sub.graph.edge(e).left, sub.graph.edge(e).right);
    maps[s].push_back(sub.to_master[as_size(e)]);
  }
  color_regular_recursive(
      Subgraph{std::move(halves[0]), std::move(maps[0])}, delta / 2,
      base, bottom_degree, master_color);
  color_regular_recursive(
      Subgraph{std::move(halves[1]), std::move(maps[1])}, delta / 2,
      base + delta / 2, bottom_degree, master_color);
}

void color_via_splits(const BipartiteMultigraph& graph, int delta,
                      int bottom_degree, EdgeColoring& out) {
  const BipartiteMultigraph regular = regularize(graph, delta);
  std::vector<int> padded_color(as_size(regular.edge_count()), -1);
  color_regular_recursive(full_subgraph(regular), delta, 0,
                          bottom_degree, padded_color);
  padded_color.resize(as_size(graph.edge_count()));
  out.color.assign(padded_color.begin(), padded_color.end());
  out.num_colors = delta;
}

void color_by_matching_peel(const BipartiteMultigraph& graph, int delta,
                            EdgeColoring& out) {
  const BipartiteMultigraph regular = regularize(graph, delta);
  std::vector<int> padded_color(as_size(regular.edge_count()), -1);
  Subgraph remaining = full_subgraph(regular);
  for (int round = 0; round < delta; ++round) {
    remaining = peel_perfect_matching(remaining, round, padded_color);
  }
  padded_color.resize(as_size(graph.edge_count()));
  out.color.assign(padded_color.begin(), padded_color.end());
  out.num_colors = delta;
}

}  // namespace

std::string to_string(ColoringAlgorithm algorithm) {
  switch (algorithm) {
    case ColoringAlgorithm::kAlternatingPath:
      return "alternating-path";
    case ColoringAlgorithm::kEulerSplit:
      return "euler-split";
    case ColoringAlgorithm::kMatchingPeel:
      return "matching-peel";
    case ColoringAlgorithm::kCircuitPeel:
      return "circuit-peel";
  }
  POPS_CHECK(false, "unknown ColoringAlgorithm");
  return "";
}

// ---------------------------------------------------------------------
// EdgeColorer: alternating-path backend (constructive König proof) on
// reusable flat scratch, plus the fair-distribution rebalancer.
// ---------------------------------------------------------------------

void EdgeColorer::color(const BipartiteMultigraph& graph,
                        ColoringAlgorithm algorithm, EdgeColoring& out) {
  const int delta = graph.max_degree();
  if (delta == 0) {
    out.color.clear();
    out.num_colors = 0;
    return;
  }
  switch (algorithm) {
    case ColoringAlgorithm::kAlternatingPath:
      color_alternating(graph, delta, out);
      return;
    case ColoringAlgorithm::kEulerSplit:
      color_via_splits(graph, delta, /*bottom_degree=*/1, out);
      return;
    case ColoringAlgorithm::kMatchingPeel:
      color_by_matching_peel(graph, delta, out);
      return;
    case ColoringAlgorithm::kCircuitPeel:
      color_via_splits(graph, delta, /*bottom_degree=*/2, out);
      return;
  }
  POPS_CHECK(false, "unknown ColoringAlgorithm");
}

void EdgeColorer::color_alternating(const BipartiteMultigraph& graph,
                                    int delta, EdgeColoring& out) {
  out.num_colors = delta;
  out.color.assign(as_size(graph.edge_count()), -1);
  left_slot_.assign(as_size(graph.left_count()) * as_size(delta), -1);
  right_slot_.assign(as_size(graph.right_count()) * as_size(delta), -1);
  // An alternating path visits each vertex at most once.
  path_.reserve(as_size(graph.left_count() + graph.right_count()));
  for (int e = 0; e < graph.edge_count(); ++e) {
    insert_edge(graph, delta, e, out);
  }
}

namespace {

inline int free_color_in(const std::vector<int>& slots, int vertex,
                         int delta) {
  const std::size_t base = as_size(vertex) * as_size(delta);
  for (int c = 0; c < delta; ++c) {
    if (slots[base + as_size(c)] < 0) return c;
  }
  POPS_CHECK(false, "no free color at a vertex with degree < Delta");
  return -1;
}

}  // namespace

void EdgeColorer::insert_edge(const BipartiteMultigraph& graph,
                              int delta, int e, EdgeColoring& out) {
  const int u = graph.edge(e).left;
  const int v = graph.edge(e).right;
  const int alpha = free_color_in(left_slot_, u, delta);
  const int beta = free_color_in(right_slot_, v, delta);
  if (alpha != beta &&
      right_slot_[as_size(v) * as_size(delta) + as_size(alpha)] >= 0) {
    flip_path(graph, delta, v, alpha, beta, out);
  }
  // alpha is now free at both endpoints: at u it always was, and at v
  // either it already was or the flipped path freed it (the path
  // cannot reach u — it would have to arrive there on an alpha edge,
  // which u does not have, and parity rules out arriving on beta).
  assign_color(delta, e, u, v, alpha, out);
}

// Flips the maximal alpha/beta alternating path that starts at right
// vertex v with its alpha edge.
void EdgeColorer::flip_path(const BipartiteMultigraph& graph, int delta,
                            int v, int alpha, int beta,
                            EdgeColoring& out) {
  path_.clear();
  bool on_right = true;
  int vertex = v;
  int want = alpha;
  while (true) {
    const auto& slots = on_right ? right_slot_ : left_slot_;
    const int e = slots[as_size(vertex) * as_size(delta) + as_size(want)];
    if (e < 0) break;
    path_.push_back(e);
    vertex = on_right ? graph.edge(e).left : graph.edge(e).right;
    on_right = !on_right;
    want = want == alpha ? beta : alpha;
  }
  for (const int e : path_) {
    const int c = out.color[as_size(e)];
    left_slot_[as_size(graph.edge(e).left) * as_size(delta) +
               as_size(c)] = -1;
    right_slot_[as_size(graph.edge(e).right) * as_size(delta) +
                as_size(c)] = -1;
  }
  for (const int e : path_) {
    const int c = out.color[as_size(e)] == alpha ? beta : alpha;
    assign_color(delta, e, graph.edge(e).left, graph.edge(e).right, c,
                 out);
  }
}

void EdgeColorer::assign_color(int delta, int e, int u, int v, int c,
                               EdgeColoring& out) {
  const std::size_t left_index = as_size(u) * as_size(delta) + as_size(c);
  const std::size_t right_index =
      as_size(v) * as_size(delta) + as_size(c);
  POPS_CHECK(left_slot_[left_index] < 0 && right_slot_[right_index] < 0,
             "alternating-path: color slot already taken");
  out.color[as_size(e)] = c;
  left_slot_[left_index] = e;
  right_slot_[right_index] = e;
}

void EdgeColorer::spread(const BipartiteMultigraph& graph,
                         int num_classes, EdgeColoring& coloring) {
  POPS_CHECK(num_classes >= std::max(1, coloring.num_colors),
             "spread_colors: fewer classes than existing colors");
  coloring.num_colors = num_classes;
  const int edge_count = graph.edge_count();
  sizes_.assign(as_size(num_classes), 0);
  for (const int c : coloring.color) ++sizes_[as_size(c)];

  const int vertex_count = graph.left_count() + graph.right_count();
  slot_a_.resize(as_size(vertex_count));
  slot_b_.resize(as_size(vertex_count));
  spread_path_.reserve(as_size(edge_count));

  // Each pass moves one edge from a largest class to a smallest class
  // by flipping an alternating path, so the spread shrinks steadily;
  // the iteration bound is a safety net, not a tuning knob.
  const long long limit =
      2LL * static_cast<long long>(edge_count) * num_classes + 16;
  for (long long iteration = 0;; ++iteration) {
    POPS_CHECK(iteration <= limit, "spread_colors failed to converge");
    const int a = static_cast<int>(
        std::max_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
    const int b = static_cast<int>(
        std::min_element(sizes_.begin(), sizes_.end()) - sizes_.begin());
    if (sizes_[as_size(a)] - sizes_[as_size(b)] <= 1) break;

    // Build the a/b two-colored subgraph: at most one edge of each
    // class per vertex, so components are paths and even cycles.
    std::fill(slot_a_.begin(), slot_a_.end(), -1);
    std::fill(slot_b_.begin(), slot_b_.end(), -1);
    for (int e = 0; e < edge_count; ++e) {
      const int c = coloring.color[as_size(e)];
      if (c != a && c != b) continue;
      const int u = graph.edge(e).left;
      const int v = graph.left_count() + graph.edge(e).right;
      auto& slots = c == a ? slot_a_ : slot_b_;
      slots[as_size(u)] = e;
      slots[as_size(v)] = e;
    }

    // Cycles carry equally many a- and b-edges, so some PATH has one
    // more a-edge than b-edges. The a/b components are vertex-disjoint,
    // so we can flip several such paths in one scan — up to gap/2 of
    // them, which leaves the pair balanced instead of paying a full
    // subgraph rebuild per single edge moved.
    int flips_left = (sizes_[as_size(a)] - sizes_[as_size(b)]) / 2;
    bool flipped = false;
    walked_.assign(as_size(edge_count), 0);
    for (int start = 0; start < vertex_count && flips_left > 0;
         ++start) {
      const bool has_a = slot_a_[as_size(start)] >= 0;
      const bool has_b = slot_b_[as_size(start)] >= 0;
      if (has_a == has_b) continue;  // not a path endpoint
      if (!has_a) continue;  // paths with extra a-edges start on a
      if (walked_[as_size(slot_a_[as_size(start)])] != 0) continue;
      int vertex = start;
      int want_a = 1;
      spread_path_.clear();
      while (true) {
        const auto& slots = want_a ? slot_a_ : slot_b_;
        const int e = slots[as_size(vertex)];
        if (e < 0) break;
        if (!spread_path_.empty() && e == spread_path_.back()) break;
        spread_path_.push_back(e);
        walked_[as_size(e)] = 1;
        const int u = graph.edge(e).left;
        const int v = graph.left_count() + graph.edge(e).right;
        vertex = vertex == u ? v : u;
        want_a = 1 - want_a;
      }
      if (spread_path_.size() % 2 == 0) continue;  // balanced path
      for (const int e : spread_path_) {
        coloring.color[as_size(e)] =
            coloring.color[as_size(e)] == a ? b : a;
      }
      sizes_[as_size(a)] -= 1;
      sizes_[as_size(b)] += 1;
      --flips_left;
      flipped = true;
    }
    POPS_CHECK(flipped, "spread_colors: no augmenting path found");
  }
}

std::size_t EdgeColorer::scratch_capacity() const {
  return left_slot_.capacity() + right_slot_.capacity() +
         path_.capacity() + sizes_.capacity() + slot_a_.capacity() +
         slot_b_.capacity() + walked_.capacity() +
         spread_path_.capacity();
}

EdgeColoring color_edges(const BipartiteMultigraph& graph,
                         ColoringAlgorithm algorithm) {
  EdgeColorer colorer;
  EdgeColoring out;
  colorer.color(graph, algorithm, out);
  return out;
}

EdgeColoring spread_colors(const BipartiteMultigraph& graph,
                           const EdgeColoring& coloring,
                           int num_classes) {
  EdgeColorer colorer;
  EdgeColoring result = coloring;
  colorer.spread(graph, num_classes, result);
  return result;
}

}  // namespace pops
