// Hopcroft-Karp maximum matching on bipartite multigraphs.
//
// Used by the matching-peel and euler-split coloring backends to peel
// perfect matchings off regular multigraphs (which always have one, by
// Hall's theorem), and exposed on its own because the benches time it
// in isolation.
#pragma once

#include <vector>

#include "graph/bipartite_multigraph.h"

namespace pops {

struct MatchingResult {
  /// Edge id matched at each left vertex, or -1 if unmatched.
  std::vector<int> left_edge;
  /// Edge id matched at each right vertex, or -1 if unmatched.
  std::vector<int> right_edge;
  /// Number of matched pairs.
  int size = 0;

  bool is_perfect(const BipartiteMultigraph& graph) const {
    return size == graph.left_count() &&
           graph.left_count() == graph.right_count();
  }
};

/// O(E * sqrt(V)) maximum matching.
MatchingResult maximum_matching(const BipartiteMultigraph& graph);

}  // namespace pops
