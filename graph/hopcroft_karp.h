// Hopcroft-Karp maximum matching on bipartite multigraphs.
//
// Used by the matching-peel and circuit-peel coloring backends to peel
// perfect matchings off regular multigraphs (which always have one, by
// Hall's theorem), and exposed on its own because the benches time it
// in isolation.
#pragma once

#include <vector>

#include "graph/bipartite_multigraph.h"
#include "support/thread_annotations.h"

namespace pops {

struct MatchingResult {
  /// Edge id matched at each left vertex, or -1 if unmatched.
  std::vector<int> left_edge;
  /// Edge id matched at each right vertex, or -1 if unmatched.
  std::vector<int> right_edge;
  /// Number of matched pairs.
  int size = 0;

  bool is_perfect(const BipartiteMultigraph& graph) const {
    return size == graph.left_count() &&
           graph.left_count() == graph.right_count();
  }
};

/// Reusable flat Hopcroft-Karp kernel over a caller-built CsrAdjacency.
/// The BFS layering and the augmenting DFS both run iteratively out of
/// kernel-owned flat arrays (distance layers, BFS queue, an explicit
/// DFS stack), so repeated matchings over same-shaped views perform no
/// steady-state allocation and the DFS cannot overflow the call stack
/// on deep alternating paths.
///
/// Thread-compatible, not thread-safe: one kernel per thread.
class POPS_THREAD_COMPATIBLE MatchingKernel {
 public:
  /// Computes a maximum matching of `adj` (whose edge endpoints live in
  /// `edges`) and returns its size. O(E * sqrt(V)).
  int match(const CsrAdjacency& adj, Span<const Edge> edges);

  /// Edge id matched at each left vertex (-1 if unmatched), valid until
  /// the next match() call.
  Span<const int> left_edges() const {
    return Span<const int>(match_left_.data(), match_left_.size());
  }
  /// Edge id matched at each right vertex (-1 if unmatched).
  Span<const int> right_edges() const {
    return Span<const int>(match_right_.data(), match_right_.size());
  }

  /// Capacity snapshot for the zero-allocation tests.
  std::size_t scratch_capacity() const {
    return match_left_.capacity() + match_right_.capacity() +
           dist_.capacity() + queue_.capacity() + stack_l_.capacity() +
           stack_at_.capacity() + stack_e_.capacity();
  }

 private:
  bool bfs(const CsrAdjacency& adj, const Edge* edges);
  bool try_augment(const CsrAdjacency& adj, const Edge* edges, int root);

  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> dist_;      // BFS layer per left vertex
  std::vector<int> queue_;     // BFS queue of left vertices
  std::vector<int> stack_l_;   // DFS stack: left vertex per frame
  std::vector<int> stack_at_;  // DFS stack: incidence cursor per frame
  std::vector<int> stack_e_;   // DFS stack: edge taken out of frame
};

/// O(E * sqrt(V)) maximum matching (one-shot wrapper over
/// MatchingKernel).
MatchingResult maximum_matching(const BipartiteMultigraph& graph);

}  // namespace pops
