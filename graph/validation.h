// Structural validation of edge colorings.
#pragma once

#include "graph/bipartite_multigraph.h"
#include "graph/edge_coloring.h"

namespace pops {

/// True iff the coloring assigns every edge a color in
/// [0, num_colors) and no two edges sharing an endpoint have the same
/// color.
bool is_valid_edge_coloring(const BipartiteMultigraph& graph,
                            const EdgeColoring& coloring);

}  // namespace pops
