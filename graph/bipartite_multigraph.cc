#include "graph/bipartite_multigraph.h"

#include <algorithm>

namespace pops {

int BipartiteMultigraph::max_degree() const {
  int degree = 0;
  for (int l = 0; l < left_count(); ++l) {
    degree = std::max(degree, left_degree(l));
  }
  for (int r = 0; r < right_count(); ++r) {
    degree = std::max(degree, right_degree(r));
  }
  return degree;
}

std::size_t BipartiteMultigraph::scratch_capacity() const {
  std::size_t total = edges_.capacity() + left_edges_.capacity() +
                      right_edges_.capacity();
  for (const auto& edges : left_edges_) total += edges.capacity();
  for (const auto& edges : right_edges_) total += edges.capacity();
  return total;
}

void CsrAdjacency::start_build(int left_count, int right_count) {
  left_count_ = left_count;
  vertex_count_ = left_count + right_count;
  offset_.assign(as_size(vertex_count_ + 1), 0);
}

// offset_[v + 1] holds vertex v's incidence count on entry; turns the
// counts into offsets, sizes the incidence array, and primes the
// per-vertex cursors for the fill pass.
void CsrAdjacency::finish_build(std::size_t incidence_size) {
  int* offset = offset_.data();
  for (int v = 0; v < vertex_count_; ++v) offset[v + 1] += offset[v];
  incident_.resize(incidence_size);
  cursor_.assign(offset_.begin(), offset_.end() - 1);
}

void CsrAdjacency::build(const BipartiteMultigraph& graph) {
  start_build(graph.left_count(), graph.right_count());
  const Edge* edges = graph.edges().data();
  const int m = graph.edge_count();
  int* offset = offset_.data();
  for (int e = 0; e < m; ++e) {
    ++offset[edges[e].left + 1];
    ++offset[left_count_ + edges[e].right + 1];
  }
  finish_build(2 * as_size(m));
  int* cursor = cursor_.data();
  int* incident = incident_.data();
  for (int e = 0; e < m; ++e) {
    incident[cursor[edges[e].left]++] = e;
    incident[cursor[left_count_ + edges[e].right]++] = e;
  }
}

void CsrAdjacency::build_subset(Span<const int> edge_ids,
                                Span<const Edge> edges, int left_count,
                                int right_count) {
  start_build(left_count, right_count);
  const int* ids = edge_ids.data();
  const Edge* endpoint = edges.data();
  const int count = edge_ids.count();
  int* offset = offset_.data();
  for (int i = 0; i < count; ++i) {
    const Edge& e = endpoint[ids[i]];
    ++offset[e.left + 1];
    ++offset[left_count_ + e.right + 1];
  }
  finish_build(2 * as_size(count));
  int* cursor = cursor_.data();
  int* incident = incident_.data();
  for (int i = 0; i < count; ++i) {
    const int id = ids[i];
    const Edge& e = endpoint[id];
    incident[cursor[e.left]++] = id;
    incident[cursor[left_count_ + e.right]++] = id;
  }
}

bool BipartiteMultigraph::is_regular() const {
  if (edge_count() == 0) {
    for (int l = 0; l < left_count(); ++l) {
      if (left_degree(l) != 0) return false;
    }
    for (int r = 0; r < right_count(); ++r) {
      if (right_degree(r) != 0) return false;
    }
    return true;
  }
  const int degree = left_degree(0);
  for (int l = 0; l < left_count(); ++l) {
    if (left_degree(l) != degree) return false;
  }
  for (int r = 0; r < right_count(); ++r) {
    if (right_degree(r) != degree) return false;
  }
  return true;
}

}  // namespace pops
