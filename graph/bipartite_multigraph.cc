#include "graph/bipartite_multigraph.h"

#include <algorithm>

namespace pops {

int BipartiteMultigraph::max_degree() const {
  int degree = 0;
  for (int l = 0; l < left_count(); ++l) {
    degree = std::max(degree, left_degree(l));
  }
  for (int r = 0; r < right_count(); ++r) {
    degree = std::max(degree, right_degree(r));
  }
  return degree;
}

std::size_t BipartiteMultigraph::scratch_capacity() const {
  std::size_t total = edges_.capacity() + left_edges_.capacity() +
                      right_edges_.capacity();
  for (const auto& edges : left_edges_) total += edges.capacity();
  for (const auto& edges : right_edges_) total += edges.capacity();
  return total;
}

bool BipartiteMultigraph::is_regular() const {
  if (edge_count() == 0) {
    for (int l = 0; l < left_count(); ++l) {
      if (left_degree(l) != 0) return false;
    }
    for (int r = 0; r < right_count(); ++r) {
      if (right_degree(r) != 0) return false;
    }
    return true;
  }
  const int degree = left_degree(0);
  for (int l = 0; l < left_count(); ++l) {
    if (left_degree(l) != degree) return false;
  }
  for (int r = 0; r < right_count(); ++r) {
    if (right_degree(r) != degree) return false;
  }
  return true;
}

}  // namespace pops
