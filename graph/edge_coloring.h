// Proper edge coloring of bipartite multigraphs with Delta colors.
//
// König's theorem: the chromatic index of a bipartite multigraph equals
// its maximum degree Delta. The constructive proofs become the three
// classic algorithm families the paper's Remark 1 leans on, plus a
// circuit-peeling variant:
//
//   * alternating-path: insert edges one by one; on a color clash flip
//     a two-colored alternating path (O(V*E) worst case, tiny
//     constants).
//   * euler-split: recursively halve the graph with Euler splits; peel
//     one perfect matching whenever the degree is odd
//     (O(E log Delta) plus the matchings).
//   * matching-peel: peel Delta perfect matchings with Hopcroft-Karp
//     (O(Delta * E * sqrt(V))).
//   * circuit-peel: like euler-split but bottoms out at degree 2,
//     two-coloring each remaining circuit by alternation.
//
// All backends return a coloring with exactly Delta colors for every
// non-empty input (0 colors for the empty graph).
#pragma once

#include <string>

#include "graph/bipartite_multigraph.h"

namespace pops {

enum class ColoringAlgorithm {
  kAlternatingPath = 0,
  kEulerSplit = 1,
  kMatchingPeel = 2,
  kCircuitPeel = 3,
};

inline constexpr ColoringAlgorithm kAllColoringAlgorithms[] = {
    ColoringAlgorithm::kAlternatingPath,
    ColoringAlgorithm::kEulerSplit,
    ColoringAlgorithm::kMatchingPeel,
    ColoringAlgorithm::kCircuitPeel,
};

std::string to_string(ColoringAlgorithm algorithm);

struct EdgeColoring {
  /// color[e] in [0, num_colors) for every edge id e.
  std::vector<int> color;
  int num_colors = 0;
};

/// Properly colors the edges of any bipartite multigraph with
/// max_degree colors.
EdgeColoring color_edges(
    const BipartiteMultigraph& graph,
    ColoringAlgorithm algorithm = ColoringAlgorithm::kAlternatingPath);

/// Rebalances a proper coloring onto num_classes classes (num_classes
/// >= coloring.num_colors) so that class sizes differ by at most one,
/// using alternating-path swaps that preserve properness. When
/// num_classes divides the edge count, every class ends up with exactly
/// edge_count / num_classes edges. This is the "fair distribution"
/// step of the Theorem 2 router: classes become intermediate groups,
/// and the size bound is the receiver capacity of a group.
EdgeColoring spread_colors(const BipartiteMultigraph& graph,
                           const EdgeColoring& coloring, int num_classes);

}  // namespace pops
