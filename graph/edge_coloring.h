// Proper edge coloring of bipartite multigraphs with Delta colors.
//
// König's theorem: the chromatic index of a bipartite multigraph equals
// its maximum degree Delta. The constructive proofs become the three
// classic algorithm families the paper's Remark 1 leans on, plus a
// circuit-peeling variant:
//
//   * alternating-path: insert edges one by one; on a color clash flip
//     a two-colored alternating path (O(V*E) worst case, tiny
//     constants).
//   * euler-split: recursively halve the graph with Euler splits; peel
//     one perfect matching whenever the degree is odd
//     (O(E log Delta) plus the matchings).
//   * matching-peel: peel Delta perfect matchings with Hopcroft-Karp
//     (O(Delta * E * sqrt(V))).
//   * circuit-peel: like euler-split but bottoms out at degree 2,
//     two-coloring each remaining circuit by alternation.
//
// All backends return a coloring with exactly Delta colors for every
// non-empty input (0 colors for the empty graph).
#pragma once

#include <string>

#include "graph/bipartite_multigraph.h"
#include "graph/euler_split.h"
#include "graph/hopcroft_karp.h"
#include "support/thread_annotations.h"

namespace pops {

enum class ColoringAlgorithm {
  kAlternatingPath = 0,
  kEulerSplit = 1,
  kMatchingPeel = 2,
  kCircuitPeel = 3,
};

inline constexpr ColoringAlgorithm kAllColoringAlgorithms[] = {
    ColoringAlgorithm::kAlternatingPath,
    ColoringAlgorithm::kEulerSplit,
    ColoringAlgorithm::kMatchingPeel,
    ColoringAlgorithm::kCircuitPeel,
};

std::string to_string(ColoringAlgorithm algorithm);

struct EdgeColoring {
  /// color[e] in [0, num_colors) for every edge id e.
  std::vector<int> color;
  int num_colors = 0;
};

/// Reusable colorer: owns all scratch for color() and spread(), so
/// repeated colorings of same-shaped graphs perform no steady-state
/// heap allocation (the RoutingEngine holds one per topology). Results
/// are written into caller-provided EdgeColoring storage, whose
/// capacity is likewise reused across calls.
///
/// Every backend runs on flat scratch. The alternating-path backend
/// uses vertex-major color-slot tables; the divide-and-conquer
/// backends (euler-split, matching-peel, circuit-peel) run iteratively
/// over index ranges of one padded delta-regular edge array, rebuilding
/// a CsrAdjacency view per range instead of copying subgraphs — no
/// transient BipartiteMultigraph, no per-recursion vectors.
///
/// Thread-compatible, not thread-safe: the scratch tables make every
/// call a mutation, so use one colorer per thread (see
/// support/thread_annotations.h).
class POPS_THREAD_COMPATIBLE EdgeColorer {
 public:
  /// Properly colors `graph` with max_degree colors into `out`
  /// (out.color is resized in place).
  void color(const BipartiteMultigraph& graph,
             ColoringAlgorithm algorithm, EdgeColoring& out);

  /// In-place fair distribution: rebalances `coloring` (a proper
  /// coloring of `graph`) onto num_classes classes (num_classes >=
  /// coloring.num_colors) so that class sizes differ by at most one,
  /// using alternating-path swaps that preserve properness. When
  /// num_classes divides the edge count, every class ends up with
  /// exactly edge_count / num_classes edges.
  void spread(const BipartiteMultigraph& graph, int num_classes,
              EdgeColoring& coloring);

  /// Capacity snapshot for the zero-allocation tests.
  std::size_t scratch_capacity() const;

 private:
  void color_alternating(const BipartiteMultigraph& graph, int delta,
                         EdgeColoring& out);
  void insert_edge(const BipartiteMultigraph& graph, int delta, int e,
                   EdgeColoring& out);
  void flip_path(const BipartiteMultigraph& graph, int delta, int v,
                 int alpha, int beta, EdgeColoring& out);
  void assign_color(int delta, int e, int u, int v, int c,
                    EdgeColoring& out);

  // Divide-and-conquer machinery. The recursion is an explicit stack
  // of ranges [lo, hi) of dc_work_ (edge ids into dc_edges_), each
  // delta-regular on the padded vertex set and owning the color block
  // [base, base + delta).
  struct DncRange {
    int lo;
    int hi;
    int delta;
    int base;
  };
  int setup_regular(const BipartiteMultigraph& graph, int delta);
  void build_range_view(int lo, int hi);
  void split_range(int lo, int hi);
  int peel_matching(int lo, int hi, int color_value);
  void color_dnc(const BipartiteMultigraph& graph, int delta,
                 int bottom_degree, EdgeColoring& out);
  void color_matching_peel(const BipartiteMultigraph& graph, int delta,
                           EdgeColoring& out);
  void finish_dnc(const BipartiteMultigraph& graph, int delta,
                  EdgeColoring& out);

  // Alternating-path scratch. The slot arrays are vertex-major flat
  // tables: slot[vertex * delta + color] is the edge with that color
  // at that vertex, or -1.
  std::vector<int> left_slot_;
  std::vector<int> right_slot_;
  std::vector<int> path_;
  // spread() scratch.
  std::vector<int> sizes_;
  std::vector<int> slot_a_;
  std::vector<int> slot_b_;
  std::vector<char> walked_;
  std::vector<int> spread_path_;
  // Divide-and-conquer scratch: the padded regularized edge array and
  // the flat work/side/color arrays the range kernels index into.
  int regular_n_ = 0;           // padded per-side vertex count
  std::vector<Edge> dc_edges_;  // real edges first, then padding
  std::vector<int> dc_color_;   // per padded edge id
  std::vector<int> dc_work_;    // permutation of padded edge ids
  std::vector<int> dc_aux_;     // stable-partition spill buffer
  std::vector<int> dc_side_;    // Euler-split side per padded edge id
  std::vector<int> dc_deg_left_;
  std::vector<int> dc_deg_right_;
  std::vector<DncRange> dc_stack_;
  CsrAdjacency dc_adj_;
  EulerSplitKernel dc_euler_;
  MatchingKernel dc_matching_;
};

/// Properly colors the edges of any bipartite multigraph with
/// max_degree colors. Thin wrapper over a transient EdgeColorer.
EdgeColoring color_edges(
    const BipartiteMultigraph& graph,
    ColoringAlgorithm algorithm = ColoringAlgorithm::kAlternatingPath);

/// Rebalances a proper coloring onto num_classes classes (num_classes
/// >= coloring.num_colors) so that class sizes differ by at most one,
/// using alternating-path swaps that preserve properness. When
/// num_classes divides the edge count, every class ends up with exactly
/// edge_count / num_classes edges. This is the "fair distribution"
/// step of the Theorem 2 router: classes become intermediate groups,
/// and the size bound is the receiver capacity of a group.
EdgeColoring spread_colors(const BipartiteMultigraph& graph,
                           const EdgeColoring& coloring, int num_classes);

}  // namespace pops
