#include "graph/hopcroft_karp.h"

#include <limits>

namespace pops {
namespace {

constexpr int kInf = std::numeric_limits<int>::max();

}  // namespace

// BFS over left vertices: layers of shortest alternating paths from
// free left vertices. Returns true when some free right vertex is
// reachable.
bool MatchingKernel::bfs(const CsrAdjacency& adj, const Edge* edges) {
  const int left_count = adj.left_count();
  const int* offset = adj.offsets().data();
  const int* incident = adj.incidence().data();
  int* dist = dist_.data();
  int* queue = queue_.data();
  int head = 0;
  int tail = 0;
  for (int l = 0; l < left_count; ++l) {
    if (match_left_[as_size(l)] < 0) {
      dist[l] = 0;
      queue[tail++] = l;
    } else {
      dist[l] = kInf;
    }
  }
  bool found = false;
  while (head < tail) {
    const int l = queue[head++];
    const int layer = dist[l] + 1;
    const int end = offset[l + 1];
    for (int at = offset[l]; at < end; ++at) {
      const int r = edges[incident[at]].right;
      const int back = match_right_[as_size(r)];
      if (back < 0) {
        found = true;
      } else {
        const int l2 = edges[back].left;
        if (dist[l2] == kInf) {
          dist[l2] = layer;
          queue[tail++] = l2;
        }
      }
    }
  }
  return found;
}

// Iterative layered DFS from a free left vertex. Frame i holds the
// left vertex stack_l_[i], its incidence cursor stack_at_[i], and —
// once the frame descends or augments — the edge stack_e_[i] it took.
// On reaching a free right vertex the whole stack is an augmenting
// path, flipped in one pass.
bool MatchingKernel::try_augment(const CsrAdjacency& adj,
                                 const Edge* edges, int root) {
  const int* offset = adj.offsets().data();
  const int* incident = adj.incidence().data();
  int* dist = dist_.data();
  int* stack_l = stack_l_.data();
  int* stack_at = stack_at_.data();
  int* stack_e = stack_e_.data();
  int top = 0;
  stack_l[0] = root;
  stack_at[0] = offset[root];
  while (top >= 0) {
    const int cur = stack_l[top];
    const int end = offset[cur + 1];
    int at = stack_at[top];
    bool descended = false;
    while (at < end) {
      const int edge_id = incident[at++];
      const int r = edges[edge_id].right;
      const int back = match_right_[as_size(r)];
      if (back < 0) {
        stack_e[top] = edge_id;
        for (int i = 0; i <= top; ++i) {
          const int e = stack_e[i];
          match_left_[as_size(stack_l[i])] = e;
          match_right_[as_size(edges[e].right)] = e;
        }
        return true;
      }
      const int l2 = edges[back].left;
      if (dist[l2] == dist[cur] + 1) {
        stack_e[top] = edge_id;
        stack_at[top] = at;
        ++top;
        stack_l[top] = l2;
        stack_at[top] = offset[l2];
        descended = true;
        break;
      }
    }
    if (!descended) {
      dist[cur] = kInf;
      --top;
    }
  }
  return false;
}

int MatchingKernel::match(const CsrAdjacency& adj,
                          Span<const Edge> edges) {
  const int left_count = adj.left_count();
  const int right_count = adj.vertex_count() - left_count;
  match_left_.assign(as_size(left_count), -1);
  match_right_.assign(as_size(right_count), -1);
  dist_.resize(as_size(left_count));
  queue_.resize(as_size(left_count));
  stack_l_.resize(as_size(left_count + 1));
  stack_at_.resize(as_size(left_count + 1));
  stack_e_.resize(as_size(left_count + 1));
  const Edge* endpoint = edges.data();
  int size = 0;
  while (bfs(adj, endpoint)) {
    for (int l = 0; l < left_count; ++l) {
      if (match_left_[as_size(l)] < 0 &&
          try_augment(adj, endpoint, l)) {
        ++size;
      }
    }
  }
  return size;
}

MatchingResult maximum_matching(const BipartiteMultigraph& graph) {
  CsrAdjacency adj;
  adj.build(graph);
  MatchingKernel kernel;
  MatchingResult result;
  result.size = kernel.match(adj, Span<const Edge>(graph.edges()));
  result.left_edge.assign(kernel.left_edges().begin(),
                          kernel.left_edges().end());
  result.right_edge.assign(kernel.right_edges().begin(),
                           kernel.right_edges().end());
  return result;
}

}  // namespace pops
