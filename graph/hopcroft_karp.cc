#include "graph/hopcroft_karp.h"

#include <limits>

namespace pops {
namespace {

constexpr int kInf = std::numeric_limits<int>::max();

struct HopcroftKarp {
  explicit HopcroftKarp(const BipartiteMultigraph& graph)
      : graph(graph),
        match_left(as_size(graph.left_count()), -1),
        match_right(as_size(graph.right_count()), -1),
        dist(as_size(graph.left_count()), kInf),
        queue(as_size(graph.left_count())) {}

  // BFS over left vertices: layers of shortest alternating paths from
  // free left vertices. Returns true when some free right vertex is
  // reachable.
  bool bfs() {
    int head = 0;
    int tail = 0;
    for (int l = 0; l < graph.left_count(); ++l) {
      if (match_left[as_size(l)] < 0) {
        dist[as_size(l)] = 0;
        queue[as_size(tail++)] = l;
      } else {
        dist[as_size(l)] = kInf;
      }
    }
    bool found = false;
    while (head < tail) {
      const int l = queue[as_size(head++)];
      for (const int edge_id : graph.edges_at_left(l)) {
        const int r = graph.edge(edge_id).right;
        const int back = match_right[as_size(r)];
        if (back < 0) {
          found = true;
        } else {
          const int l2 = graph.edge(back).left;
          if (dist[as_size(l2)] == kInf) {
            dist[as_size(l2)] = dist[as_size(l)] + 1;
            queue[as_size(tail++)] = l2;
          }
        }
      }
    }
    return found;
  }

  bool dfs(int l) {
    for (const int edge_id : graph.edges_at_left(l)) {
      const int r = graph.edge(edge_id).right;
      const int back = match_right[as_size(r)];
      if (back < 0 || (dist[as_size(graph.edge(back).left)] ==
                           dist[as_size(l)] + 1 &&
                       dfs(graph.edge(back).left))) {
        match_left[as_size(l)] = edge_id;
        match_right[as_size(r)] = edge_id;
        return true;
      }
    }
    dist[as_size(l)] = kInf;
    return false;
  }

  const BipartiteMultigraph& graph;
  std::vector<int> match_left;
  std::vector<int> match_right;
  std::vector<int> dist;
  std::vector<int> queue;
};

}  // namespace

MatchingResult maximum_matching(const BipartiteMultigraph& graph) {
  HopcroftKarp hk(graph);
  MatchingResult result;
  while (hk.bfs()) {
    for (int l = 0; l < graph.left_count(); ++l) {
      if (hk.match_left[as_size(l)] < 0 && hk.dfs(l)) {
        ++result.size;
      }
    }
  }
  result.left_edge = std::move(hk.match_left);
  result.right_edge = std::move(hk.match_right);
  return result;
}

}  // namespace pops
