// Random graph generators shared by tests and benches.
#pragma once

#include <numeric>
#include <vector>

#include "graph/bipartite_multigraph.h"
#include "support/prng.h"

namespace pops {

/// Random degree-regular bipartite multigraph on n + n vertices: the
/// union of `degree` uniform random perfect matchings (parallel edges
/// are expected and welcome). This is the instance family of the
/// paper's Remark 1 experiments.
inline BipartiteMultigraph random_regular_multigraph(int n, int degree,
                                                     Rng& rng) {
  BipartiteMultigraph g(n, n);
  std::vector<int> rights(as_size(n));
  for (int k = 0; k < degree; ++k) {
    std::iota(rights.begin(), rights.end(), 0);
    rng.shuffle(rights);
    for (int l = 0; l < n; ++l) g.add_edge(l, rights[as_size(l)]);
  }
  return g;
}

}  // namespace pops
