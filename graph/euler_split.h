// Euler split: partition the edges of a bipartite multigraph into two
// halves that split every vertex's degree as evenly as possible.
//
// This is the Remark 1 workhorse: on a 2k-regular multigraph the split
// yields two k-regular halves, which is what makes the divide-and-
// conquer edge-coloring backends O(E log Delta).
#pragma once

#include <vector>

#include "graph/bipartite_multigraph.h"

namespace pops {

struct EulerSplitResult {
  /// side[e] is 0 or 1 for every edge id e of the input graph.
  std::vector<int> side;

  /// Degree of the vertex inside the chosen half, for convenience in
  /// tests: counts[s][v] with v a combined vertex id (left vertices
  /// first, then right vertices).
  int half_count(int s) const {
    int count = 0;
    for (const int value : side) count += value == s ? 1 : 0;
    return count;
  }
};

/// Walks maximal trails (odd-degree start vertices first) and assigns
/// edges to sides 0/1 alternately along each trail. Guarantees for every
/// vertex v: |deg_0(v) - deg_1(v)| <= 1, with equality to 0 whenever
/// deg(v) is even. On a 2k-regular graph both halves are exactly
/// k-regular.
EulerSplitResult euler_split(const BipartiteMultigraph& graph);

}  // namespace pops
