// Euler split: partition the edges of a bipartite multigraph into two
// halves that split every vertex's degree as evenly as possible.
//
// This is the Remark 1 workhorse: on a 2k-regular multigraph the split
// yields two k-regular halves, which is what makes the divide-and-
// conquer edge-coloring backends O(E log Delta).
#pragma once

#include <vector>

#include "graph/bipartite_multigraph.h"
#include "support/thread_annotations.h"

namespace pops {

struct EulerSplitResult {
  /// side[e] is 0 or 1 for every edge id e of the input graph.
  std::vector<int> side;

  /// Degree of the vertex inside the chosen half, for convenience in
  /// tests: counts[s][v] with v a combined vertex id (left vertices
  /// first, then right vertices).
  int half_count(int s) const {
    int count = 0;
    for (const int value : side) count += value == s ? 1 : 0;
    return count;
  }
};

/// Reusable flat Euler-split kernel: walks maximal trails (odd-degree
/// start vertices first) over a caller-built CsrAdjacency and assigns
/// edges to sides 0/1 alternately along each trail, writing
/// side[edge id] for every edge in the view. Guarantees for every
/// vertex v: |deg_0(v) - deg_1(v)| <= 1, with equality to 0 whenever
/// deg(v) is even; on a 2k-regular (sub)graph both halves are exactly
/// k-regular.
///
/// All walk state (per-vertex cursors, epoch-stamped used flags) lives
/// in kernel-owned flat arrays sized by the view, so repeated splits
/// over same-shaped views perform no steady-state allocation. The
/// EdgeColorer holds one kernel and calls it once per recursion range.
///
/// Thread-compatible, not thread-safe: one kernel per thread.
class POPS_THREAD_COMPATIBLE EulerSplitKernel {
 public:
  /// Splits every edge of `adj` (whose endpoints live in `edges`;
  /// `side` must be indexable by every edge id in the view).
  void split(const CsrAdjacency& adj, Span<const Edge> edges,
             Span<int> side);

  /// Capacity snapshot for the zero-allocation tests.
  std::size_t scratch_capacity() const {
    return cursor_.capacity() + used_stamp_.capacity();
  }

 private:
  int next_unused(const CsrAdjacency& adj, int vertex);
  void walk(const CsrAdjacency& adj, const Edge* edges, int start,
            int* side);

  std::vector<int> cursor_;            // per-vertex incidence cursor
  std::vector<long long> used_stamp_;  // per-edge; valid iff == epoch_
  long long epoch_ = 0;
};

/// One-shot wrapper over EulerSplitKernel for a whole multigraph.
EulerSplitResult euler_split(const BipartiteMultigraph& graph);

}  // namespace pops
