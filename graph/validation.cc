#include "graph/validation.h"

#include <vector>

namespace pops {

bool is_valid_edge_coloring(const BipartiteMultigraph& graph,
                            const EdgeColoring& coloring) {
  if (static_cast<int>(coloring.color.size()) != graph.edge_count()) {
    return false;
  }
  for (const int c : coloring.color) {
    if (c < 0 || c >= coloring.num_colors) return false;
  }
  std::vector<bool> seen(as_size(coloring.num_colors), false);
  const auto side_ok = [&](const std::vector<int>& incident) {
    std::fill(seen.begin(), seen.end(), false);
    for (const int e : incident) {
      const int c = coloring.color[as_size(e)];
      if (seen[as_size(c)]) return false;
      seen[as_size(c)] = true;
    }
    return true;
  };
  for (int l = 0; l < graph.left_count(); ++l) {
    if (!side_ok(graph.edges_at_left(l))) return false;
  }
  for (int r = 0; r < graph.right_count(); ++r) {
    if (!side_ok(graph.edges_at_right(r))) return false;
  }
  return true;
}

}  // namespace pops
