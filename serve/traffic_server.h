// TrafficServer: the streaming h-relation serving layer.
//
// Every workload below this layer is a one-shot call; the server is
// the long-running system the ROADMAP's "millions of users" scenario
// asks for. It accepts an open-loop stream of point-to-point demands,
// accumulates them into a window that is always a valid h-relation
// (the degree cap is enforced on admission, so the König decomposition
// below never sees a window of unbounded degree), and on window close
// routes the window with one reused RoutingEngine — the same
// decomposition as routing/h_relation, re-implemented against
// server-owned scratch so that steady-state serving performs no heap
// allocation — executes the schedule on the strict simulator, and
// aborts rather than report counters from an unverified window.
//
// Time is measured in slots ("ticks"): demands carry the arrival tick
// of their open-loop generator, a window executes at
// max(server clock, latest arrival in the window), and the clock then
// advances by the window's slot count. Queueing delay of a demand is
// the tick distance from its arrival to its window's execution,
// aggregated in a fixed-bucket histogram (p50/p99 without allocation).
//
// Ownership follows the RoutingEngine discipline: the server owns
// every intermediate — the traffic multigraph, the coloring, the
// per-phase padding arrays, the filtered flat schedule, the simulator
// — and rebuilds them in place per window. scratch_footprint() is the
// aggregate capacity the soak tests compare across thousands of
// windows.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pops/flat_plan.h"
#include "pops/network.h"
#include "pops/patterns.h"
#include "routing/engine.h"
#include "routing/h_relation.h"

namespace pops {

struct ServerConfig {
  /// Window degree cap h: a window never holds more demands sent by —
  /// or addressed to — one processor. A demand that would exceed the
  /// cap closes the window first and opens the next one.
  int max_window_degree = 4;
  /// Window demand-count cap: the window closes as soon as it holds
  /// this many demands.
  int max_window_demands = 1024;
  RouterOptions router;
};

/// Power-of-two-bucket latency histogram: bucket k counts delays in
/// [2^(k-1), 2^k) (bucket 0 counts exact zeros). Fixed storage, so
/// recording is allocation-free; percentiles are bucket upper bounds.
struct DelayHistogram {
  long long count = 0;
  unsigned long long sum = 0;
  std::uint64_t max = 0;
  std::array<long long, 64> buckets{};

  void record(std::uint64_t delay);
  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]);
  /// 0 for an empty histogram.
  std::uint64_t percentile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) /
                            static_cast<double>(count);
  }
};

struct ServerStats {
  long long windows_routed = 0;
  long long demands_routed = 0;
  long long payload_flits_delivered = 0;
  /// Sum of executed window slot counts...
  long long slots_executed = 0;
  /// ...against the sum of per-window h-relation budgets
  /// (h * 2 * ceil(d/g)); the König path meets the budget exactly.
  long long budget_slots = 0;
  /// Largest window degree h closed so far.
  int max_window_degree = 0;
  /// Ticks from demand arrival to window execution.
  DelayHistogram queueing_delay;

  double slots_per_window() const {
    return windows_routed == 0
               ? 0.0
               : static_cast<double>(slots_executed) /
                     static_cast<double>(windows_routed);
  }
};

class TrafficServer {
 public:
  explicit TrafficServer(const Topology& topo,
                         const ServerConfig& config = {});

  const Topology& topology() const { return topo_; }
  const ServerConfig& config() const { return config_; }
  const ServerStats& stats() const { return stats_; }

  /// The server clock, in ticks (slots executed so far, gated by
  /// arrival times).
  std::uint64_t now() const { return clock_; }

  /// Enqueues one demand into the open window, closing and executing
  /// the window first when the demand would breach the degree cap, and
  /// after adding when the count cap is reached.
  void submit(const Demand& demand);

  /// Closes and executes the open window; a no-op when it is empty.
  void flush();

  /// Demands waiting in the open window.
  int pending_demands() const { return as_int(demands_.size()); }
  /// Degree (max per-processor send/receive count) of the open window.
  int pending_degree() const { return window_degree_; }

  /// Degree of the last executed window (0 before the first window).
  int last_window_degree() const { return last_h_; }
  /// Slot count of the last executed window.
  int last_window_slots() const { return window_schedule_.slot_count(); }

  /// Debug/verification accessors: the last executed window as the
  /// routing/h_relation types, so tests can feed the server's output
  /// through verify_h_relation. These materialize fresh vectors and
  /// are not part of the serving hot path.
  std::vector<Request> last_window_requests() const;
  HRelationPlan last_window_plan() const;

  /// Aggregate capacity of every server-owned arena (engine and
  /// simulator included). Two equal footprints around a stretch of
  /// serving mean no steady-state allocation grew.
  ScratchFootprint scratch_footprint() const;

 private:
  void execute_window();
  void prime_scratch();

  Topology topo_;
  ServerConfig config_;
  ServerStats stats_;
  std::uint64_t clock_ = 0;

  // --- Open window ---
  std::vector<Demand> demands_;
  std::vector<int> send_count_;  // per processor, this window
  std::vector<int> recv_count_;  // per processor, this window
  int window_degree_ = 0;
  std::uint64_t window_max_arrival_ = 0;
  long long window_payload_ = 0;

  // --- Routing scratch (rebuilt in place per window) ---
  RoutingEngine engine_;
  BipartiteMultigraph traffic_;  // n x n, one edge per demand
  EdgeColorer colorer_;
  EdgeColoring coloring_;          // h-coloring of the traffic graph
  std::vector<int> phase_offsets_;  // CSR over phases, h + 1 entries
  std::vector<int> phase_demands_;  // demand ids bucketed by phase
  std::vector<int> phase_cursor_;   // counting-sort fill cursors
  std::vector<int> image_;             // padded permutation of a phase
  std::vector<int> demand_of_source_;  // source -> demand id, per phase
  std::vector<char> destination_used_;
  FlatSchedule window_schedule_;  // filtered, demand-id packet names
  Network net_;

  // --- Last executed window (for the debug accessors) ---
  std::vector<Demand> last_demands_;
  int last_h_ = 0;
};

}  // namespace pops
