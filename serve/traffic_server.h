// TrafficServer: the streaming h-relation serving layer.
//
// Every workload below this layer is a one-shot call; the server is
// the long-running system the ROADMAP's "millions of users" scenario
// asks for. It accepts an open-loop stream of point-to-point demands,
// accumulates them into a window that is always a valid h-relation
// (the degree cap is enforced on admission, so the König decomposition
// below never sees a window of unbounded degree), and on window close
// routes the window with one reused RoutingEngine — the same
// decomposition as routing/h_relation, re-implemented against
// server-owned scratch so that steady-state serving performs no heap
// allocation — executes the schedule on the strict simulator, and
// aborts rather than report counters from an unverified window.
//
// Time is measured in slots ("ticks"): demands carry the arrival tick
// of their open-loop generator, a window executes at
// max(server clock, latest arrival in the window), and the clock then
// advances by the window's slot count. Queueing delay of a demand is
// the tick distance from its arrival to its window's execution,
// aggregated in a fixed-bucket histogram (p50/p99 without allocation).
//
// Ownership follows the RoutingEngine discipline: the server owns
// every intermediate — the traffic multigraph, the coloring, the
// per-phase padding arrays, the filtered flat schedule, the simulator
// — and rebuilds them in place per window. scratch_footprint() is the
// aggregate capacity the soak tests compare across thousands of
// windows; under POPS_ALLOC_GUARD builds the contract is additionally
// enforced at runtime: every post-priming window executes inside a
// ScopedAllocationBan.
//
// Unlike the engines below it, the server IS thread-safe: all mutable
// state is guarded by one mutex (annotations checked by clang
// -Wthread-safety), so open-loop generators on several threads can
// submit into one shared server. Windows still close and route
// serially under the lock — sharding the server across engines is the
// ROADMAP's next step, and it inherits these annotations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "pops/flat_plan.h"
#include "pops/network.h"
#include "pops/patterns.h"
#include "routing/engine.h"
#include "routing/h_relation.h"
#include "support/mutex.h"
#include "support/thread_annotations.h"

namespace pops {

struct ServerConfig {
  /// Window degree cap h: a window never holds more demands sent by —
  /// or addressed to — one processor. A demand that would exceed the
  /// cap closes the window first and opens the next one.
  int max_window_degree = 4;
  /// Window demand-count cap: the window closes as soon as it holds
  /// this many demands.
  int max_window_demands = 1024;
  RouterOptions router;
  /// Test-only hook: skip the constructor's arena reserves and priming
  /// windows but still arm the steady-state allocation ban. Under
  /// POPS_ALLOC_GUARD the first real window then trips the guard —
  /// the seeded violation test_alloc_guard uses to prove the ban is
  /// live. Never set this in production code.
  bool debug_shrink_reserves = false;
};

/// Power-of-two-bucket latency histogram: bucket k counts delays in
/// [2^(k-1), 2^k) (bucket 0 counts exact zeros). Fixed storage, so
/// recording is allocation-free; percentiles are bucket upper bounds.
struct DelayHistogram {
  long long count = 0;
  unsigned long long sum = 0;
  std::uint64_t max = 0;
  std::array<long long, 64> buckets{};

  void record(std::uint64_t delay);
  /// Upper bound of the bucket holding the q-quantile (q in [0, 1]);
  /// 0 for an empty histogram.
  std::uint64_t percentile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) /
                            static_cast<double>(count);
  }
};

struct ServerStats {
  long long windows_routed = 0;
  long long demands_routed = 0;
  long long payload_flits_delivered = 0;
  /// Sum of executed window slot counts...
  long long slots_executed = 0;
  /// ...against the sum of per-window h-relation budgets
  /// (h * 2 * ceil(d/g)); the König path meets the budget exactly.
  long long budget_slots = 0;
  /// Largest window degree h closed so far.
  int max_window_degree = 0;
  /// Ticks from demand arrival to window execution.
  DelayHistogram queueing_delay;

  double slots_per_window() const {
    return windows_routed == 0
               ? 0.0
               : static_cast<double>(slots_executed) /
                     static_cast<double>(windows_routed);
  }
};

class TrafficServer {
 public:
  explicit TrafficServer(const Topology& topo,
                         const ServerConfig& config = {});

  const Topology& topology() const { return topo_; }
  const ServerConfig& config() const { return config_; }

  /// Snapshot of the counters, by value: a reference into guarded
  /// state would escape the lock.
  ServerStats stats() const POPS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// The server clock, in ticks (slots executed so far, gated by
  /// arrival times).
  std::uint64_t now() const POPS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return clock_;
  }

  /// Enqueues one demand into the open window, closing and executing
  /// the window first when the demand would breach the degree cap, and
  /// after adding when the count cap is reached.
  void submit(const Demand& demand) POPS_EXCLUDES(mu_);

  /// Closes and executes the open window; a no-op when it is empty.
  void flush() POPS_EXCLUDES(mu_);

  /// Demands waiting in the open window.
  int pending_demands() const POPS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pending_demands_locked();
  }
  /// Degree (max per-processor send/receive count) of the open window.
  int pending_degree() const POPS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return window_degree_;
  }

  /// Degree of the last executed window (0 before the first window).
  int last_window_degree() const POPS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return last_h_;
  }
  /// Slot count of the last executed window.
  int last_window_slots() const POPS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return window_schedule_.slot_count();
  }

  /// Debug/verification accessors: the last executed window as the
  /// routing/h_relation types, so tests can feed the server's output
  /// through verify_h_relation. These materialize fresh vectors and
  /// are not part of the serving hot path.
  std::vector<Request> last_window_requests() const POPS_EXCLUDES(mu_);
  HRelationPlan last_window_plan() const POPS_EXCLUDES(mu_);

  /// Aggregate capacity of every server-owned arena (engine and
  /// simulator included). Two equal footprints around a stretch of
  /// serving mean no steady-state allocation grew.
  ScratchFootprint scratch_footprint() const POPS_EXCLUDES(mu_);

 private:
  // The mutex is not recursive: public entry points lock once and call
  // only the *_locked / REQUIRES-annotated private layer below.
  void submit_locked(const Demand& demand) POPS_REQUIRES(mu_);
  void execute_window() POPS_REQUIRES(mu_);
  void prime_scratch() POPS_REQUIRES(mu_);
  int pending_demands_locked() const POPS_REQUIRES(mu_) {
    return as_int(demands_.size());
  }

  // Immutable after construction (no guard needed).
  Topology topo_;
  ServerConfig config_;
  bool zero_alloc_eligible_ = false;

  mutable Mutex mu_;

  ServerStats stats_ POPS_GUARDED_BY(mu_);
  std::uint64_t clock_ POPS_GUARDED_BY(mu_) = 0;

  // --- Open window ---
  std::vector<Demand> demands_ POPS_GUARDED_BY(mu_);
  std::vector<int> send_count_ POPS_GUARDED_BY(mu_);  // per processor
  std::vector<int> recv_count_ POPS_GUARDED_BY(mu_);  // per processor
  int window_degree_ POPS_GUARDED_BY(mu_) = 0;
  std::uint64_t window_max_arrival_ POPS_GUARDED_BY(mu_) = 0;
  long long window_payload_ POPS_GUARDED_BY(mu_) = 0;

  // --- Routing scratch (rebuilt in place per window) ---
  RoutingEngine engine_ POPS_GUARDED_BY(mu_);
  BipartiteMultigraph traffic_ POPS_GUARDED_BY(mu_);  // one edge/demand
  EdgeColorer colorer_ POPS_GUARDED_BY(mu_);
  EdgeColoring coloring_ POPS_GUARDED_BY(mu_);  // h-coloring of traffic
  std::vector<int> phase_offsets_ POPS_GUARDED_BY(mu_);  // CSR, h + 1
  std::vector<int> phase_demands_ POPS_GUARDED_BY(mu_);  // by phase
  std::vector<int> phase_cursor_ POPS_GUARDED_BY(mu_);   // sort cursors
  std::vector<int> image_ POPS_GUARDED_BY(mu_);  // padded permutation
  std::vector<int> demand_of_source_ POPS_GUARDED_BY(mu_);
  std::vector<char> destination_used_ POPS_GUARDED_BY(mu_);
  FlatSchedule window_schedule_ POPS_GUARDED_BY(mu_);  // filtered
  Network net_ POPS_GUARDED_BY(mu_);

  // --- Last executed window (for the debug accessors) ---
  std::vector<Demand> last_demands_ POPS_GUARDED_BY(mu_);
  int last_h_ POPS_GUARDED_BY(mu_) = 0;

  // Armed after priming: every later execute_window runs inside a
  // ScopedAllocationBan (POPS_ALLOC_GUARD builds abort on any heap
  // allocation there).
  bool steady_ POPS_GUARDED_BY(mu_) = false;
};

}  // namespace pops
