#include "serve/traffic_server.h"

#include <algorithm>

#include "routing/bounds.h"
#include "support/alloc_guard.h"
#include "support/format.h"

namespace pops {
namespace {

// Bucket of a delay value: its bit width, so bucket k covers
// [2^(k-1), 2^k) and bucket 0 is exactly zero.
int bucket_of(std::uint64_t delay) {
  int bits = 0;
  while (delay >> bits) ++bits;
  return bits;
}

}  // namespace

void DelayHistogram::record(std::uint64_t delay) {
  ++count;
  sum += delay;
  max = std::max(max, delay);
  ++buckets[as_size(bucket_of(delay))];
}

std::uint64_t DelayHistogram::percentile(double q) const {
  if (count == 0) return 0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  const long long target = std::max<long long>(
      1, static_cast<long long>(clamped * static_cast<double>(count) +
                                0.5));
  long long seen = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    seen += buckets[k];
    if (seen >= target) {
      // Upper bound of bucket k: 0 for k == 0, else 2^k - 1.
      return k == 0 ? 0 : (std::uint64_t{1} << k) - 1;
    }
  }
  return max;
}

TrafficServer::TrafficServer(const Topology& topo,
                             const ServerConfig& config)
    : topo_(topo),
      config_(config),
      engine_(topo, config.router),
      traffic_(topo.processor_count(), topo.processor_count()),
      net_(topo) {
  POPS_CHECK(config_.max_window_degree >= 1,
             "ServerConfig: max_window_degree must be >= 1");
  POPS_CHECK(config_.max_window_demands >= 1,
             "ServerConfig: max_window_demands must be >= 1");
  zero_alloc_eligible_ = engine_.zero_alloc_eligible();
  MutexLock lock(&mu_);
  const int n = topo_.processor_count();
  send_count_.assign(as_size(n), 0);
  recv_count_.assign(as_size(n), 0);
  image_.assign(as_size(n), -1);
  demand_of_source_.assign(as_size(n), -1);
  destination_used_.assign(as_size(n), 0);
  if (!config_.debug_shrink_reserves) {
    demands_.reserve(as_size(config_.max_window_demands));
    last_demands_.reserve(as_size(config_.max_window_demands));
    phase_offsets_.reserve(as_size(config_.max_window_degree + 1));
    phase_demands_.reserve(as_size(config_.max_window_demands));
    phase_cursor_.reserve(as_size(config_.max_window_degree));
    // A window of h phases filters h Theorem 2 schedules of at most 2n
    // transmissions each.
    window_schedule_.reserve(
        2 * n * config_.max_window_degree,
        h_relation_budget(topo_, config_.max_window_degree));
    // No window holds more demands than the count cap, so the coloring
    // never needs a larger color array, and the traffic graph never
    // holds more edges (nor a vertex of higher degree than the cap).
    coloring_.color.reserve(as_size(config_.max_window_demands));
    traffic_.reserve_edges(
        static_cast<int>(std::min<long long>(
            config_.max_window_demands,
            static_cast<long long>(n) * config_.max_window_degree)),
        std::min(config_.max_window_degree, config_.max_window_demands));
    // Peak buffer occupancy of a processor: its un-sent window sources
    // plus its delivered packets (each at most the window degree) plus
    // relayed packets in flight (drained within one phase, so at most
    // one per phase slot).
    const int degree =
        std::min(config_.max_window_degree, config_.max_window_demands);
    net_.reserve_buffers(2 * degree + theorem2_slots(topo_));
    prime_scratch();
  }
  // From here on every window executes under the allocation ban (when
  // the coloring backend is eligible). With debug_shrink_reserves the
  // arenas were neither reserved nor primed, so under POPS_ALLOC_GUARD
  // the first window must trip the guard — the seeded violation the
  // negative tests rely on.
  steady_ = zero_alloc_eligible_ || config_.debug_shrink_reserves;
  net_.ban_steady_allocations(steady_ &&
                              !config_.debug_shrink_reserves);
}

void TrafficServer::prime_scratch() {
  // Drive two synthetic worst-shape windows through the full serving
  // path, then zero the counters: one window concentrated on a single
  // processor (degree cap — deepest adjacency lists and colorer
  // tables) and one at the demand-count cap (widest traffic graph,
  // coloring and phase arrays). Every later window fits inside one of
  // these shapes, so steady-state serving starts allocation-free
  // instead of allocation-free-after-warm-up.
  const int n = topo_.processor_count();
  const int h = config_.max_window_degree;
  const int degree = std::min(h, config_.max_window_demands);
  Demand demand;
  for (int k = 0; k < degree; ++k) {
    demand.source = 0;
    demand.destination = k % n;
    submit_locked(demand);
  }
  execute_window();
  const long long widest = std::min<long long>(
      config_.max_window_demands, static_cast<long long>(n) * h);
  long long submitted = 0;
  for (int r = 0; r < h && submitted < widest; ++r) {
    for (int p = 0; p < n && submitted < widest; ++p) {
      demand.source = p;
      demand.destination = (p + r + 1) % n;
      submit_locked(demand);
      ++submitted;
    }
  }
  execute_window();
  stats_ = ServerStats{};
  clock_ = 0;
  last_demands_.clear();
  last_h_ = 0;
  window_schedule_.clear();
}

void TrafficServer::submit(const Demand& demand) {
  MutexLock lock(&mu_);
  submit_locked(demand);
}

void TrafficServer::submit_locked(const Demand& demand) {
  const int n = topo_.processor_count();
  POPS_CHECK(demand.source >= 0 && demand.source < n,
             "TrafficServer::submit: source out of range");
  POPS_CHECK(demand.destination >= 0 && demand.destination < n,
             "TrafficServer::submit: destination out of range");
  POPS_CHECK(demand.payload >= 0,
             "TrafficServer::submit: negative payload");

  // Admission control keeps the open window a valid h-relation for
  // h = max_window_degree: close first when this demand would breach
  // the cap.
  if (send_count_[as_size(demand.source)] + 1 >
          config_.max_window_degree ||
      recv_count_[as_size(demand.destination)] + 1 >
          config_.max_window_degree) {
    execute_window();
  }

  demands_.push_back(demand);
  const int sends = ++send_count_[as_size(demand.source)];
  const int recvs = ++recv_count_[as_size(demand.destination)];
  window_degree_ = std::max({window_degree_, sends, recvs});
  window_max_arrival_ = std::max(window_max_arrival_, demand.arrival_tick);
  window_payload_ += demand.payload;

  if (pending_demands_locked() >= config_.max_window_demands) {
    execute_window();
  }
}

void TrafficServer::flush() {
  MutexLock lock(&mu_);
  execute_window();
}

void TrafficServer::execute_window() {
  if (demands_.empty()) return;
  // The whole window pipeline — graph build, coloring, per-phase
  // routing, simulation, counters — runs under the ban once the
  // constructor primed the arenas: any steady-state allocation aborts
  // in POPS_ALLOC_GUARD builds.
  ScopedAllocationBan ban("TrafficServer::execute_window", steady_);
  const int n = topo_.processor_count();
  const int h = window_degree_;
  const int demand_count = pending_demands_locked();

  // The traffic multigraph: one edge per demand (edge id == demand
  // id), maximum degree exactly h, so König properly colors it with h
  // colors — each color class a partial permutation.
  traffic_.reset(n, n);
  for (const Demand& demand : demands_) {
    traffic_.add_edge(demand.source, demand.destination);
  }
  colorer_.color(traffic_, config_.router.coloring, coloring_);
  POPS_CHECK(coloring_.num_colors == h,
             "TrafficServer: window must be h-edge-colorable");

  // Bucket the demands per phase (counting sort into CSR).
  phase_offsets_.assign(as_size(h + 1), 0);
  for (int e = 0; e < demand_count; ++e) {
    ++phase_offsets_[as_size(coloring_.color[as_size(e)] + 1)];
  }
  for (int c = 0; c < h; ++c) {
    phase_offsets_[as_size(c + 1)] += phase_offsets_[as_size(c)];
  }
  phase_demands_.resize(as_size(demand_count));
  phase_cursor_.assign(as_size(h), 0);
  for (int c = 0; c < h; ++c) {
    phase_cursor_[as_size(c)] = phase_offsets_[as_size(c)];
  }
  for (int e = 0; e < demand_count; ++e) {
    const int c = coloring_.color[as_size(e)];
    phase_demands_[as_size(phase_cursor_[as_size(c)]++)] = e;
  }

  const std::uint64_t exec_tick = std::max(clock_, window_max_arrival_);

  // Route every phase as a padded permutation through the reused
  // engine, filtering the padding transmissions into the window
  // schedule under demand-id packet names (dropping transmissions only
  // relaxes the optical constraints, so validity is preserved).
  window_schedule_.clear();
  for (int c = 0; c < h; ++c) {
    std::fill(image_.begin(), image_.end(), -1);
    std::fill(demand_of_source_.begin(), demand_of_source_.end(), -1);
    std::fill(destination_used_.begin(), destination_used_.end(), 0);
    for (int k = phase_offsets_[as_size(c)];
         k < phase_offsets_[as_size(c + 1)]; ++k) {
      const int e = phase_demands_[as_size(k)];
      const Demand& demand = demands_[as_size(e)];
      image_[as_size(demand.source)] = demand.destination;
      demand_of_source_[as_size(demand.source)] = e;
      destination_used_[as_size(demand.destination)] = 1;
    }
    // Pad idle sources onto unused destinations, in order, so the
    // Theorem 2 router applies as-is.
    int next_free = 0;
    for (int p = 0; p < n; ++p) {
      if (image_[as_size(p)] != -1) continue;
      while (destination_used_[as_size(next_free)] != 0) ++next_free;
      image_[as_size(p)] = next_free;
      destination_used_[as_size(next_free)] = 1;
    }

    const FlatSchedule& padded =
        engine_.route_permutation(Span<const int>(image_));
    for (int s = 0; s < padded.slot_count(); ++s) {
      window_schedule_.begin_slot();
      for (const Transmission& t : padded.slot(s)) {
        const int e = demand_of_source_[as_size(t.packet)];
        if (e == -1) continue;
        window_schedule_.push(Transmission{t.source, t.destination, e});
      }
    }
  }

  // Execute on the strict simulator; the server never reports counters
  // from a window that did not verify.
  net_.reset();
  for (int e = 0; e < demand_count; ++e) {
    const Demand& demand = demands_[as_size(e)];
    net_.load_packet(
        Packet{e, demand.source, demand.destination, demand.payload, 0});
  }
  const bool executed = net_.execute(window_schedule_);
  if (!executed) {
    // Cold failure path: composing the abort diagnostic allocates and
    // must not trip the window ban — the simulator's rejection is the
    // failure to report.
    ScopedAllocationAllow allow;
    POPS_CHECK(false, str_cat("TrafficServer: window rejected by the "
                              "simulator: ",
                              net_.failure()));
  }
  POPS_CHECK(net_.all_delivered(),
             "TrafficServer: window executed but left demands "
             "undelivered");

  // Counters.
  const int slots = window_schedule_.slot_count();
  stats_.windows_routed += 1;
  stats_.demands_routed += demand_count;
  stats_.payload_flits_delivered += window_payload_;
  stats_.slots_executed += slots;
  stats_.budget_slots += h_relation_budget(topo_, h);
  stats_.max_window_degree = std::max(stats_.max_window_degree, h);
  for (const Demand& demand : demands_) {
    stats_.queueing_delay.record(exec_tick - demand.arrival_tick);
  }
  clock_ = exec_tick + static_cast<std::uint64_t>(slots);

  // Keep the executed window for the debug accessors (buffer swap:
  // capacities survive, so steady-state serving still never
  // allocates), then open the next window.
  std::swap(demands_, last_demands_);
  last_h_ = h;
  demands_.clear();
  std::fill(send_count_.begin(), send_count_.end(), 0);
  std::fill(recv_count_.begin(), recv_count_.end(), 0);
  window_degree_ = 0;
  window_max_arrival_ = 0;
  window_payload_ = 0;
}

std::vector<Request> TrafficServer::last_window_requests() const {
  MutexLock lock(&mu_);
  std::vector<Request> requests;
  requests.reserve(last_demands_.size());
  for (const Demand& demand : last_demands_) {
    requests.push_back(Request{demand.source, demand.destination});
  }
  return requests;
}

HRelationPlan TrafficServer::last_window_plan() const {
  MutexLock lock(&mu_);
  HRelationPlan plan;
  plan.h = last_h_;
  if (last_h_ == 0) return plan;
  const int slots_per_phase = theorem2_slots(topo_);
  POPS_CHECK(window_schedule_.slot_count() == last_h_ * slots_per_phase,
             "last_window_plan: schedule does not cover the phases");
  for (int c = 0; c < last_h_; ++c) {
    HRelationPhase phase;
    for (int k = phase_offsets_[as_size(c)];
         k < phase_offsets_[as_size(c + 1)]; ++k) {
      phase.requests.push_back(phase_demands_[as_size(k)]);
    }
    for (int s = 0; s < slots_per_phase; ++s) {
      SlotPlan slot;
      for (const Transmission& t :
           window_schedule_.slot(c * slots_per_phase + s)) {
        slot.transmissions.push_back(t);
      }
      phase.slots.push_back(std::move(slot));
    }
    plan.phases.push_back(std::move(phase));
  }
  return plan;
}

ScratchFootprint TrafficServer::scratch_footprint() const {
  MutexLock lock(&mu_);
  ScratchFootprint footprint = engine_.scratch_footprint();
  footprint.units +=
      demands_.capacity() + last_demands_.capacity() +
      send_count_.capacity() + recv_count_.capacity() +
      traffic_.scratch_capacity() + colorer_.scratch_capacity() +
      coloring_.color.capacity() + phase_offsets_.capacity() +
      phase_demands_.capacity() + phase_cursor_.capacity() +
      image_.capacity() +
      demand_of_source_.capacity() + destination_used_.capacity() +
      window_schedule_.transmission_capacity() +
      window_schedule_.offset_capacity() + net_.scratch_capacity();
  return footprint;
}

}  // namespace pops
