#include "routing/batch_router.h"

#include "support/check.h"

namespace pops {

BatchRouter::BatchRouter(const Topology& topo,
                         const BatchRouterConfig& config)
    : topo_(topo) {
  POPS_CHECK(config.threads >= 1, "BatchRouter needs at least one thread");
  POPS_CHECK(config.queue_capacity >= 1,
             "BatchRouter needs a positive queue capacity");
  engines_.reserve(as_size(config.threads));
  // Warm every engine on the launching thread, before any worker
  // exists: route_best runs both constructions and the verification
  // simulator, so all arenas reach their steady-state shapes (which
  // depend only on the topology, not on the permutation) and each
  // engine arms its own allocation ban. Workers then inherit engines
  // that never allocate again.
  const Permutation warm_up = Permutation::identity(topo.processor_count());
  for (int i = 0; i < config.threads; ++i) {
    engines_.emplace_back(topo_, config.engine);
    engines_.back().route_best(warm_up);
  }
  ring_.resize(as_size(config.queue_capacity));
  workers_.reserve(as_size(config.threads));
  for (int i = 0; i < config.threads; ++i) {
    workers_.emplace_back(&BatchRouter::worker_loop, this, i);
  }
}

BatchRouter::~BatchRouter() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void BatchRouter::copy_schedule(const FlatSchedule& from,
                                FlatSchedule* to) {
  // Rebuild in place: once the destination's arrays have grown to the
  // topology's steady-state shape, later copies are allocation-free.
  to->clear();
  for (int s = 0; s < from.slot_count(); ++s) {
    to->begin_slot();
    for (const Transmission& transmission : from.slot(s)) {
      to->push(transmission);
    }
  }
}

void BatchRouter::worker_loop(int id) {
  RoutingEngine& engine = engines_[as_size(id)];
  for (;;) {
    Job job;
    bool have_batch = false;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && ring_size_ == 0 && !has_batch_work()) {
        cv_work_.wait(mu_);
      }
      if (has_batch_work()) {
        have_batch = true;
        ++batch_workers_;
      } else if (ring_size_ > 0) {
        job = ring_[as_size(ring_head_)];
        ring_head_ = (ring_head_ + 1) % as_int(ring_.size());
        --ring_size_;
        cv_space_.notify_one();
      } else {
        return;  // stopping_, and nothing left to do
      }
    }
    if (have_batch) {
      // Snapshot the published batch. The plain fields were written
      // under mu_ before the workers were woken, and this worker just
      // released mu_, so the reads are ordered; route_batch does not
      // reuse them until batch_workers_ drops back to zero.
      const Permutation* perms = batch_perms_;
      FlatSchedule* results = batch_results_;
      const RouteOptions options = batch_options_;
      const int count = batch_count_.load(std::memory_order_relaxed);
      for (;;) {
        const int i = batch_next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        copy_schedule(engine.route(perms[as_size(i)], options),
                      &results[as_size(i)]);
        batch_done_.fetch_add(1, std::memory_order_release);
      }
      {
        MutexLock lock(&mu_);
        --batch_workers_;
        if (batch_workers_ == 0 &&
            batch_done_.load(std::memory_order_acquire) ==
                batch_count_.load(std::memory_order_relaxed)) {
          cv_done_.notify_all();
        }
      }
      continue;
    }
    // Streaming job, processed outside the lock.
    copy_schedule(engine.route(*job.pi, job.options), job.out);
    {
      MutexLock lock(&mu_);
      ++completed_;
      if (completed_ == submitted_) cv_done_.notify_all();
    }
  }
}

void BatchRouter::route_batch(Span<const Permutation> perms,
                              Span<FlatSchedule> results,
                              const RouteOptions& options) {
  POPS_CHECK(perms.size() == results.size(),
             "route_batch: one result slot per permutation");
  const int count = perms.count();
  if (count == 0) return;
  // One bulk batch at a time; concurrent bulk callers queue here
  // without touching the workers' lock.
  MutexLock client(&client_mu_);
  {
    MutexLock lock(&mu_);
    POPS_CHECK(!stopping_, "route_batch on a stopping BatchRouter");
    batch_perms_ = perms.data();
    batch_results_ = results.data();
    batch_options_ = options;
    batch_done_.store(0, std::memory_order_relaxed);
    batch_next_.store(0, std::memory_order_relaxed);
    batch_count_.store(count, std::memory_order_relaxed);
  }
  cv_work_.notify_all();
  {
    MutexLock lock(&mu_);
    // Wait for all results AND for every claimer to leave the claim
    // loop: a straggler may still bump batch_next_ after the last
    // result lands, and the counters must not be recycled under it.
    while (batch_done_.load(std::memory_order_acquire) < count ||
           batch_workers_ > 0) {
      cv_done_.wait(mu_);
    }
    batch_count_.store(0, std::memory_order_relaxed);
    batch_next_.store(0, std::memory_order_relaxed);
    batch_perms_ = nullptr;
    batch_results_ = nullptr;
  }
}

void BatchRouter::submit(const Permutation* pi, FlatSchedule* result,
                         const RouteOptions& options) {
  POPS_CHECK(pi != nullptr && result != nullptr,
             "submit needs a permutation and a result slot");
  {
    MutexLock lock(&mu_);
    POPS_CHECK(!stopping_, "submit on a stopping BatchRouter");
    while (ring_size_ == as_int(ring_.size())) cv_space_.wait(mu_);
    const int tail = (ring_head_ + ring_size_) % as_int(ring_.size());
    ring_[as_size(tail)] = Job{pi, result, options};
    ++ring_size_;
    ++submitted_;
  }
  cv_work_.notify_one();
}

void BatchRouter::drain() {
  MutexLock lock(&mu_);
  while (completed_ < submitted_) cv_done_.wait(mu_);
}

ScratchFootprint BatchRouter::scratch_footprint() const {
  ScratchFootprint footprint;
  for (const RoutingEngine& engine : engines_) {
    footprint.units += engine.scratch_footprint().units;
  }
  MutexLock lock(&mu_);
  footprint.units += ring_.capacity();
  return footprint;
}

}  // namespace pops
