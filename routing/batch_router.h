// BatchRouter: a fixed pool of worker threads routing many independent
// permutations concurrently, one warm RoutingEngine confined to each
// worker.
//
// Mei & Rizzi's construction is embarrassingly parallel across
// permutations — instances share nothing — so throughput scales with
// cores as long as no engine state is shared. The pool enforces the
// one-engine-per-thread confinement discipline the thread-safety layer
// (support/mutex.h, POPS_THREAD_COMPATIBLE) was built around: every
// engine is constructed and warmed up front, workers only ever touch
// their own engine, and all cross-thread traffic is job pointers.
// After construction the router itself allocates nothing: the bulk
// path hands out indices through one atomic counter, the streaming
// path reuses a bounded ring of job slots, and results are written
// into caller-provided FlatSchedules (which stop allocating once their
// arrays are warm).
//
// Two ways in:
//
//   * route_batch(perms, results, options) — bulk: blocks until every
//     permutation is routed into its result slot. Workers claim
//     indices with a single fetch_add, so per-item overhead is tens of
//     nanoseconds and small topologies still scale.
//   * submit(&pi, &result, options) / drain() — streaming: submit
//     enqueues one job (blocking while the ring is full), drain blocks
//     until everything submitted has completed. The caller keeps the
//     permutation and result alive until drain() returns.
//
// The two paths compose: workers prefer bulk work, then ring jobs.
// route_batch callers are serialized internally; submit/drain may be
// called from multiple threads.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "perm/permutation.h"
#include "pops/flat_plan.h"
#include "routing/engine.h"
#include "routing/router.h"
#include "support/mutex.h"
#include "support/span.h"

namespace pops {

struct BatchRouterConfig {
  /// Worker (and engine) count. Each worker owns one RoutingEngine.
  int threads = 1;
  /// Streaming ring capacity: submit() blocks while this many jobs
  /// are queued and unclaimed.
  int queue_capacity = 256;
  /// Engine construction options (coloring backend) for every worker.
  RouterOptions engine;
};

class BatchRouter {
 public:
  /// Builds and warms one engine per worker (route_best on a warm-up
  /// permutation sizes every arena, including the verification
  /// simulator), then starts the workers. All allocation happens here.
  explicit BatchRouter(const Topology& topo,
                       const BatchRouterConfig& config = {});
  /// Completes every queued job, then stops and joins the workers.
  ~BatchRouter();
  BatchRouter(const BatchRouter&) = delete;
  BatchRouter& operator=(const BatchRouter&) = delete;

  /// Routes perms[i] into results[i] for every i; blocks until the
  /// whole batch is done. Every worker routes with `options` on its
  /// own engine (options.coloring is ignored — the backend was fixed
  /// by BatchRouterConfig::engine). Results are bitwise identical to
  /// routing the same permutations sequentially on one engine.
  /// Concurrent route_batch calls are serialized.
  void route_batch(Span<const Permutation> perms,
                   Span<FlatSchedule> results,
                   const RouteOptions& options = {})
      POPS_EXCLUDES(mu_, client_mu_);

  /// Enqueues one job; blocks while the ring is full. `pi` and
  /// `result` must stay alive (and untouched) until drain() returns.
  void submit(const Permutation* pi, FlatSchedule* result,
              const RouteOptions& options = {}) POPS_EXCLUDES(mu_);

  /// Blocks until every submitted job has completed.
  void drain() POPS_EXCLUDES(mu_);

  int thread_count() const { return as_int(workers_.size()); }
  const Topology& topology() const { return topo_; }

  /// Sum of every worker engine's scratch footprint plus the ring
  /// capacity. Call only while idle (after drain() / route_batch()):
  /// the engines belong to the workers while work is in flight.
  ScratchFootprint scratch_footprint() const POPS_EXCLUDES(mu_);

 private:
  struct Job {
    const Permutation* pi = nullptr;
    FlatSchedule* out = nullptr;
    RouteOptions options;
  };

  void worker_loop(int id);
  /// In-place copy into the caller's slot: clear + begin_slot + push,
  /// so a warm destination never reallocates.
  static void copy_schedule(const FlatSchedule& from, FlatSchedule* to);
  /// Bulk work is pending: claimable indices remain. The atomics make
  /// this safe to evaluate anywhere; the wait loops evaluate it under
  /// mu_.
  bool has_batch_work() const {
    return batch_next_.load(std::memory_order_relaxed) <
           batch_count_.load(std::memory_order_relaxed);
  }

  Topology topo_;
  std::vector<RoutingEngine> engines_;  // index == worker id
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  /// Serializes route_batch callers (never held together with mu_
  /// except briefly inside route_batch itself).
  Mutex client_mu_;
  CondVar cv_work_;   // workers wait for jobs / a batch / stop
  CondVar cv_space_;  // submitters wait for ring space
  CondVar cv_done_;   // route_batch and drain wait for completion
  bool stopping_ POPS_GUARDED_BY(mu_) = false;

  // --- Bulk path -----------------------------------------------------
  // The caller's arrays and options are published by plain writes made
  // under mu_ before the workers are woken (the mutex hand-off orders
  // them); the atomics then carry index claims and completions without
  // further locking. batch_workers_ counts workers inside the claim
  // loop so route_batch can reset the counters only after the last
  // straggler has left.
  const Permutation* batch_perms_ = nullptr;
  FlatSchedule* batch_results_ = nullptr;
  RouteOptions batch_options_;
  std::atomic<int> batch_count_{0};
  std::atomic<int> batch_next_{0};
  std::atomic<int> batch_done_{0};
  int batch_workers_ POPS_GUARDED_BY(mu_) = 0;

  // --- Streaming ring (bounded, mutex-guarded) -----------------------
  std::vector<Job> ring_ POPS_GUARDED_BY(mu_);
  int ring_head_ POPS_GUARDED_BY(mu_) = 0;
  int ring_size_ POPS_GUARDED_BY(mu_) = 0;
  long long submitted_ POPS_GUARDED_BY(mu_) = 0;
  long long completed_ POPS_GUARDED_BY(mu_) = 0;
};

}  // namespace pops
