#include "routing/router.h"

#include "routing/engine.h"

namespace pops {

int theorem2_slots(const Topology& topo) {
  if (topo.d() == 1) return 1;
  return 2 * ((topo.d() + topo.g() - 1) / topo.g());
}

// Compatibility wrapper: the Theorem 2 construction lives in
// RoutingEngine::route_permutation; this copies the flat schedule into
// the legacy nested-vector plan. Bulk callers should hold a
// RoutingEngine and consume the FlatSchedule directly.
RoutePlan route_permutation(const Topology& topo, const Permutation& pi,
                            const RouterOptions& options) {
  RoutingEngine engine(topo, options);
  const FlatSchedule& flat = engine.route_permutation(pi);
  RoutePlan plan;
  plan.slots = flat.to_slot_plans();
  const Span<const int> mids = engine.intermediate_of();
  plan.intermediate_of.assign(mids.begin(), mids.end());
  return plan;
}

}  // namespace pops
