#include "routing/router.h"

#include <algorithm>

namespace pops {
namespace {

// Routes every packet in one slot. Valid exactly when d == 1: then
// processor == group, so both the source groups and the destination
// groups of the n transmissions are pairwise distinct and every
// coupler carries at most one packet.
RoutePlan route_single_slot(const Topology& topo, const Permutation& pi) {
  RoutePlan plan;
  SlotPlan slot;
  plan.intermediate_of.resize(as_size(topo.processor_count()));
  for (int source = 0; source < topo.processor_count(); ++source) {
    slot.transmissions.push_back(
        Transmission{source, pi(source), source});
    plan.intermediate_of[as_size(source)] = source;
  }
  plan.slots.push_back(std::move(slot));
  return plan;
}

}  // namespace

int theorem2_slots(const Topology& topo) {
  if (topo.d() == 1) return 1;
  return 2 * ((topo.d() + topo.g() - 1) / topo.g());
}

RoutePlan route_permutation(const Topology& topo, const Permutation& pi,
                            const RouterOptions& options) {
  POPS_CHECK(pi.size() == topo.processor_count(),
             "route_permutation: permutation does not fit the topology");
  const int d = topo.d();
  const int g = topo.g();
  if (d == 1) return route_single_slot(topo, pi);

  // H: one edge per packet, source group -> destination group. Edge id
  // == source processor id because sources are added in order and each
  // holds exactly one packet.
  BipartiteMultigraph h(g, g);
  for (int source = 0; source < topo.processor_count(); ++source) {
    h.add_edge(topo.group_of(source), topo.group_of(pi(source)));
  }
  const EdgeColoring coloring = color_edges(h, options.coloring);
  POPS_CHECK(coloring.num_colors == d,
             "Theorem 2: H must be d-edge-colorable");

  const int batches = (d + g - 1) / g;
  RoutePlan plan;
  plan.intermediate_of.assign(as_size(topo.processor_count()), -1);

  for (int q = 0; q < batches; ++q) {
    const int color_lo = q * g;
    const int color_hi = std::min((q + 1) * g, d);

    // H_q: the packets whose H-color falls in this batch. Every group
    // has exactly one edge per color, so H_q is (color_hi - color_lo)-
    // regular with degree <= g.
    BipartiteMultigraph h_q(g, g);
    std::vector<int> source_of_edge;
    for (int source = 0; source < topo.processor_count(); ++source) {
      const int c = coloring.color[as_size(source)];
      if (c < color_lo || c >= color_hi) continue;
      h_q.add_edge(topo.group_of(source), topo.group_of(pi(source)));
      source_of_edge.push_back(source);
    }

    // Fair distribution: a proper coloring of H_q balanced onto g
    // classes. Properness gives the two distinctness properties; the
    // balanced size (exactly Delta_q <= d per class) is the receiver
    // capacity of an intermediate group.
    const EdgeColoring fair =
        spread_colors(h_q, color_edges(h_q, options.coloring), g);

    SlotPlan distribute;
    SlotPlan deliver;
    std::vector<int> used_of_group(as_size(g), 0);
    for (int e = 0; e < h_q.edge_count(); ++e) {
      const int source = source_of_edge[as_size(e)];
      const int mid_group = fair.color[as_size(e)];
      const int mid_index = used_of_group[as_size(mid_group)]++;
      POPS_CHECK(mid_index < d,
                 "fair distribution overfilled an intermediate group");
      const int mid = topo.processor(mid_group, mid_index);
      plan.intermediate_of[as_size(source)] = mid;
      distribute.transmissions.push_back(
          Transmission{source, mid, source});
      deliver.transmissions.push_back(
          Transmission{mid, pi(source), source});
    }
    plan.slots.push_back(std::move(distribute));
    plan.slots.push_back(std::move(deliver));
  }

  POPS_CHECK(plan.slot_count() == theorem2_slots(topo),
             "Theorem 2 schedule has the wrong number of slots");
  return plan;
}

}  // namespace pops
