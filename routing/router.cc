#include "routing/router.h"

#include "routing/engine.h"

namespace pops {

std::string to_string(RouteStrategy strategy) {
  switch (strategy) {
    case RouteStrategy::kDirect:
      return "direct";
    case RouteStrategy::kTheorem2:
      return "theorem2";
    case RouteStrategy::kBest:
      return "best";
  }
  POPS_CHECK(false, "to_string: unknown RouteStrategy");
  return "";
}

int theorem2_slots(const Topology& topo) {
  if (topo.d() == 1) return 1;
  return 2 * ((topo.d() + topo.g() - 1) / topo.g());
}

RouteResult route(const Topology& topo, const Permutation& pi,
                  const RouteOptions& options) {
  RouterOptions engine_options;
  engine_options.coloring = options.coloring;
  RoutingEngine engine(topo, engine_options);
  RouteResult result;
  result.schedule = engine.route(pi, options);  // copies the flat plan
  result.strategy = engine.last_strategy();
  result.slot_count = result.schedule.slot_count();
  return result;
}

// Compatibility shim: the Theorem 2 construction lives in
// RoutingEngine; this copies the flat schedule into the legacy
// nested-vector plan. Deprecated — use route() or hold an engine.
RoutePlan route_permutation(const Topology& topo, const Permutation& pi,
                            const RouterOptions& options) {
  RoutingEngine engine(topo, options);
  const FlatSchedule& flat = engine.route_permutation(pi);
  RoutePlan plan;
  plan.slots = flat.to_slot_plans();
  const Span<const int> mids = engine.intermediate_of();
  plan.intermediate_of.assign(mids.begin(), mids.end());
  return plan;
}

}  // namespace pops
