#include "routing/bounds.h"

#include <algorithm>
#include <vector>

#include "routing/router.h"

namespace pops {

int ceil_div(int a, int b) {
  POPS_CHECK(a >= 0 && b >= 1, "ceil_div needs a >= 0, b >= 1");
  return (a + b - 1) / b;
}

int lower_bound_slots(const Topology& topo, const Permutation& pi) {
  POPS_CHECK(pi.size() == topo.processor_count(),
             "lower_bound_slots: permutation does not fit the topology");
  const int d = topo.d();
  const int g = topo.g();
  const int n = topo.processor_count();

  // Per-group load of moved packets, and the block structure: for each
  // source group, the single destination group of its packets (or -1
  // once two destinations differ).
  std::vector<int> moved_from(as_size(g), 0);
  std::vector<int> moved_to(as_size(g), 0);
  std::vector<int> block_target(as_size(g), -2);  // -2 = no packet seen
  int moved = 0;
  for (int p = 0; p < n; ++p) {
    const int src_group = topo.group_of(p);
    const int dst_group = topo.group_of(pi(p));
    if (block_target[as_size(src_group)] == -2) {
      block_target[as_size(src_group)] = dst_group;
    } else if (block_target[as_size(src_group)] != dst_group) {
      block_target[as_size(src_group)] = -1;
    }
    if (pi(p) == p) continue;
    ++moved;
    ++moved_from[as_size(src_group)];
    ++moved_to[as_size(dst_group)];
  }
  if (moved == 0) return 0;
  if (d == 1) return 1;  // Theorem 2 routes any permutation in 1 slot.

  // Bandwidth bound: a group's moved packets leave (arrive) through at
  // most min(d, g) transmissions per slot.
  int max_load = 0;
  for (int j = 0; j < g; ++j) {
    max_load = std::max({max_load, moved_from[as_size(j)],
                         moved_to[as_size(j)]});
  }
  int bound = std::max(1, ceil_div(max_load, std::min(d, g)));

  // Group-block classification (needs every group's packets on one
  // destination group).
  bool block = true;
  bool all_moving = true;   // sigma(j) != j for every group
  bool all_fixed = true;    // sigma == identity
  for (int j = 0; j < g; ++j) {
    if (block_target[as_size(j)] < 0) block = false;
    if (block_target[as_size(j)] == j) {
      all_moving = false;
    } else {
      all_fixed = false;
    }
  }
  if (block && all_moving) {
    bound = std::max(bound, 2 * ceil_div(d, g));  // Proposition 2
  } else if (block && all_fixed && moved == n) {
    bound = std::max(bound, 2 * ceil_div(d, g + 1));  // Proposition 3
  }
  return bound;
}

int h_relation_budget(const Topology& topo, int h) {
  POPS_CHECK(h >= 0, "h_relation_budget needs h >= 0");
  return h * theorem2_slots(topo);
}

}  // namespace pops
