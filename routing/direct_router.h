// Direct (no-intermediate) permutation routing on POPS(d, g).
//
// The baseline Theorem 2 competes against: every packet crosses the
// network in one hop, straight from its source to the coupler
// c(group(destination), group(source)). In a permutation the sources
// and the destinations are pairwise distinct, so the only contended
// resource is the coupler; a greedy slot-by-slot schedule that drains
// one packet per coupler per slot therefore finishes in exactly
// max_demand slots, where max_demand is the largest number of packets
// sharing one coupler. That is optimal among direct schedules and
// exact (one slot) on demand-1 traffic — Gravenstreter & Melhem's
// single-slot class.
//
// The crossover against Theorem 2's flat 2 * ceil(d / g):
//   * random traffic, d >> g: max_demand concentrates near d/g, so
//     direct wins by about a factor 2;
//   * adversarial group-block traffic (vector reversal, group
//     rotation): all d packets of a group share one coupler, so
//     direct degrades to d slots — worse by a factor g/2.
#pragma once

#include <vector>

#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

struct DirectPlan {
  /// Exactly max_demand slots (1 when max_demand <= 1).
  std::vector<SlotPlan> slots;
  /// Largest number of packets sharing one coupler — the exact length
  /// of the greedy schedule and a lower bound for any direct schedule.
  int max_demand = 0;

  int slot_count() const { return as_int(slots.size()); }
};

/// Builds the greedy direct schedule for pi: slot t carries the t-th
/// pending packet of every coupler queue. The schedule honors the
/// one-packet-per-coupler, one-send-per-transmitter and
/// one-tune-per-receiver rules by construction.
[[deprecated(
    "use route(topo, pi, {RouteStrategy::kDirect}) or "
    "RoutingEngine::route")]]
DirectPlan route_direct(const Topology& topo, const Permutation& pi);

}  // namespace pops
