// Portfolio routing: run the Theorem 2 router and the direct router
// on the same permutation, verify both schedules on the strict
// simulator, and keep the one with fewer slots.
//
// Callers get the random-traffic speed of direct routing (max demand
// ~ d/g) without ever giving up the paper's flat 2 * ceil(d / g)
// worst-case guarantee, because the adversarial group-block patterns
// that degrade direct routing to d slots flip the choice to Theorem 2.
//
// Deprecated surface: best_route and PortfolioPlan survive as shims.
// Use route(topo, pi, {RouteStrategy::kBest}) from routing/router.h
// (or RoutingEngine::route for bulk callers) instead.
#pragma once

#include <string>
#include <vector>

#include "routing/direct_router.h"
#include "routing/engine.h"
#include "routing/router.h"

namespace pops {

struct PortfolioPlan {
  /// The candidate that won (direct wins ties: same length, one hop
  /// per packet and no relay buffering).
  RouteStrategy strategy = RouteStrategy::kDirect;
  std::vector<SlotPlan> slots;
  /// Verified slot counts of both candidates.
  int direct_slot_count = 0;
  int theorem2_slot_count = 0;

  int slot_count() const { return as_int(slots.size()); }
};

/// Routes pi with both candidates, verifies both schedules, and
/// returns the shorter one. Never exceeds
/// min(direct max demand, theorem2_slots(topo)).
[[deprecated(
    "use route(topo, pi, {RouteStrategy::kBest}) or "
    "RoutingEngine::route")]]
PortfolioPlan best_route(const Topology& topo, const Permutation& pi,
                         const RouterOptions& options = {});

}  // namespace pops
