// Strict schedule verification.
//
// verify_schedule is the machine check behind every experiment table:
// it executes a schedule on the strict simulator and confirms that the
// permutation was actually realized. A table row is only printed for a
// schedule that passes.
#pragma once

#include <string>
#include <vector>

#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

// From routing/h_relation.h — forward-declared so verify.h stays
// below the routing stack in the include graph.
struct Request;
struct HRelationPlan;

struct VerificationResult {
  bool ok = false;
  /// Human-readable reason for the first violation when !ok.
  std::string failure;
};

/// Loads one packet per processor (i -> pi(i)), executes `slots` under
/// the strict POPS model, and checks full delivery. Any model
/// violation (oversubscribed coupler, double send/receive, phantom
/// packet) or any undelivered/misdelivered packet fails verification
/// with a descriptive message.
VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const std::vector<SlotPlan>& slots);

/// Flat-schedule overload: verifies an engine-produced FlatSchedule
/// slot-span by slot-span, without converting to the nested layout.
VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const FlatSchedule& schedule);

/// h-relation counterpart of verify_schedule: loads one packet per
/// request (id == request index), executes every phase's slots in
/// order under the strict POPS model, and checks that each request's
/// packet ends at its destination with nothing stranded elsewhere.
/// Returns "" on success, else a description of the first violation.
std::string verify_h_relation(const Topology& topo,
                              const std::vector<Request>& requests,
                              const HRelationPlan& plan);

}  // namespace pops
