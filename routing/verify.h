// Strict schedule verification.
//
// verify_schedule is the machine check behind every experiment table:
// it executes a schedule on the strict simulator and confirms that the
// permutation was actually realized. A table row is only printed for a
// schedule that passes.
#pragma once

#include <string>
#include <vector>

#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

// From routing/h_relation.h — forward-declared so verify.h stays
// below the routing stack in the include graph.
struct Request;
struct HRelationPlan;

struct VerificationResult {
  bool ok = false;
  /// Human-readable reason for the first violation when !ok.
  std::string failure;
};

/// Loads one packet per processor (i -> pi(i)), executes the schedule
/// under the strict POPS model, and checks full delivery. Any model
/// violation (oversubscribed coupler, double send/receive, phantom
/// packet) or any undelivered/misdelivered packet fails verification
/// with a descriptive message. The FlatSchedule overload is the
/// canonical path — it verifies an engine-produced schedule slot-span
/// by slot-span, without ever materializing the nested layout.
VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const FlatSchedule& schedule);

/// Nested legacy overload: delegates slot by slot. Survives only for
/// hand-built vector<SlotPlan> plans; new code builds a FlatSchedule.
[[deprecated("verify a FlatSchedule instead of nested SlotPlans")]]
VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const std::vector<SlotPlan>& slots);

/// h-relation counterpart of verify_schedule: loads one packet per
/// request (id == request index), executes every phase's slots in
/// order under the strict POPS model, and checks that each request's
/// packet ends at its destination with nothing stranded elsewhere.
/// Returns "" on success, else a description of the first violation.
std::string verify_h_relation(const Topology& topo,
                              const std::vector<Request>& requests,
                              const HRelationPlan& plan);

}  // namespace pops
