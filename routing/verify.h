// Strict schedule verification.
//
// verify_schedule is the machine check behind every experiment table:
// it executes a schedule on the strict simulator and confirms that the
// permutation was actually realized. A table row is only printed for a
// schedule that passes.
#pragma once

#include <string>
#include <vector>

#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

struct VerificationResult {
  bool ok = false;
  /// Human-readable reason for the first violation when !ok.
  std::string failure;
};

/// Loads one packet per processor (i -> pi(i)), executes `slots` under
/// the strict POPS model, and checks full delivery. Any model
/// violation (oversubscribed coupler, double send/receive, phantom
/// packet) or any undelivered/misdelivered packet fails verification
/// with a descriptive message.
VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const std::vector<SlotPlan>& slots);

}  // namespace pops
