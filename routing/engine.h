// RoutingEngine: all routing strategies for one fixed Topology with
// zero steady-state heap allocation.
//
// This is the canonical routing API. One-shot callers use the free
// function route(topo, pi, RouteOptions{...}) from routing/router.h;
// bulk single-threaded callers hold a RoutingEngine and call
//
//   const FlatSchedule& plan = engine.route(pi, options);
//
// per permutation; many-permutation throughput callers use
// BatchRouter::route_batch (routing/batch_router.h), which confines
// one warm engine to each worker thread. The historical free functions
// route_permutation / route_direct / best_route are deprecated shims
// over this class.
//
// Mei & Rizzi's Theorem 2 construction is oblivious and shape-static
// for fixed (d, g): H is always d-regular on g + g vertices with
// exactly n = d * g edges, every batch multigraph H_q has exactly
// g * batch_width edges, and the schedule always has
// theorem2_slots(topo) slots of n total transmissions per slot pair.
// The engine therefore owns every intermediate object — the packet
// multigraphs, the edge colorings, the fair-distribution scratch, the
// coupler queues of the direct router, the verification Network of the
// portfolio, and the emitted FlatSchedules — and rebuilds them in
// place per permutation. Routing performs no heap allocation at all
// after one warm-up call per strategy (asserted by tests that compare
// scratch_footprint() across calls) with every coloring backend: the
// alternating-path backend runs on flat slot tables, and the
// divide-and-conquer backends run iteratively over index ranges of
// one padded edge array inside EdgeColorer, so none of them builds
// transient subgraphs.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/bipartite_multigraph.h"
#include "graph/edge_coloring.h"
#include "perm/permutation.h"
#include "pops/flat_plan.h"
#include "pops/network.h"
#include "routing/router.h"
#include "support/thread_annotations.h"

namespace pops {

/// Aggregate capacity of every scratch arena the engine owns. Two
/// equal footprints around a route_* call mean the call did not grow
/// (= reallocate) any engine-owned storage.
struct ScratchFootprint {
  std::size_t units = 0;
};

inline bool operator==(const ScratchFootprint& a,
                       const ScratchFootprint& b) {
  return a.units == b.units;
}
inline bool operator!=(const ScratchFootprint& a,
                       const ScratchFootprint& b) {
  return !(a == b);
}

/// "<units> units" — so EXPECT_EQ on two footprints prints both
/// values on mismatch instead of just "footprints differ".
std::string to_string(const ScratchFootprint& footprint);
std::ostream& operator<<(std::ostream& os,
                         const ScratchFootprint& footprint);

// Thread-compatible, not thread-safe: one engine per thread (the
// BatchRouter discipline); see support/thread_annotations.h.
class POPS_THREAD_COMPATIBLE RoutingEngine {
 public:
  explicit RoutingEngine(const Topology& topo,
                         const RouterOptions& options = {});

  const Topology& topology() const { return topo_; }
  const RouterOptions& options() const { return options_; }

  /// Unified entry point: routes pi with options.strategy and returns
  /// the schedule. options.verify executes the schedule on the
  /// internal strict simulator and aborts on any violation (kBest
  /// always verifies). options.coloring is ignored — the engine's
  /// backend is fixed at construction. The returned reference stays
  /// valid until the next route call on this engine.
  const FlatSchedule& route(const Permutation& pi,
                            const RouteOptions& options = {});

  /// Strategy that produced the last route() schedule — the concrete
  /// winner (kDirect or kTheorem2) when kBest was requested.
  RouteStrategy last_strategy() const { return last_strategy_; }

  /// Theorem 2 schedule for pi: exactly theorem2_slots(topology())
  /// slots. The returned reference (and intermediate_of()) stays valid
  /// until the next route_* call on this engine.
  const FlatSchedule& route_permutation(const Permutation& pi);

  /// Same schedule for a permutation given as its raw image array
  /// (packet of processor i goes to images[i]). The engine validates
  /// bijectivity into its own stamped scratch, so bulk callers that
  /// rebuild an image buffer per call — the traffic server's padded
  /// per-phase permutations — route with zero steady-state allocation
  /// and no Permutation construction.
  const FlatSchedule& route_permutation(Span<const int> images);

  /// Intermediate processor of each source's packet in the last
  /// route_permutation schedule (the source itself when the packet was
  /// routed directly, as in the d == 1 case).
  Span<const int> intermediate_of() const { return intermediate_of_; }

  /// Greedy direct (no-intermediate) schedule: exactly max-demand
  /// slots, where max demand is the largest number of packets sharing
  /// one coupler.
  const FlatSchedule& route_direct(const Permutation& pi);
  int direct_max_demand() const { return direct_max_demand_; }

  /// Portfolio: routes pi with both strategies, executes both
  /// schedules on the engine's internal strict simulator (aborting on
  /// any violation — the engine never hands out an unverified
  /// portfolio plan), and returns the shorter one. Ties go to direct.
  const FlatSchedule& route_best(const Permutation& pi);
  RouteStrategy best_strategy() const { return best_strategy_; }
  int direct_slot_count() const { return direct_schedule_.slot_count(); }
  int theorem2_slot_count() const {
    return theorem2_schedule_.slot_count();
  }

  ScratchFootprint scratch_footprint() const;

  /// True when the engine enforces the zero-allocation contract on its
  /// route entry points under POPS_ALLOC_GUARD builds. Since the flat
  /// kernel rewrite every coloring backend qualifies, so this is
  /// always true; it stays on the API as the contract's name.
  bool zero_alloc_eligible() const { return zero_alloc_eligible_; }

 private:
  void build_theorem2(Span<const int> images);
  void build_direct(const Permutation& pi);
  /// Executes `schedule` on the internal simulator under permutation
  /// traffic pi; true iff every packet was delivered. Allocation-free
  /// once the simulator is warm.
  bool delivers(const FlatSchedule& schedule, const Permutation& pi);
  /// Aborts with the simulator's diagnostic unless `schedule`
  /// delivers pi — the RouteOptions::verify path.
  void verify_or_abort(const FlatSchedule& schedule, const Permutation& pi,
                       const char* what);
  /// Why the last delivers() returned false, for abort messages.
  std::string verification_failure() const;

  Topology topo_;
  RouterOptions options_;
  bool zero_alloc_eligible_ = false;

  // One warm-up call per strategy sizes that strategy's arenas; from
  // the second call on, the entry point arms a ScopedAllocationBan on
  // itself (when eligible), so the steady-state contract is enforced
  // at runtime rather than inferred from footprint snapshots.
  bool warm_theorem2_ = false;
  bool warm_direct_ = false;
  bool warm_verify_ = false;

  // --- Theorem 2 scratch ---
  BipartiteMultigraph h_;    // the packet multigraph H (g x g)
  BipartiteMultigraph h_q_;  // one batch H_q (g x g)
  EdgeColorer colorer_;
  EdgeColoring coloring_;  // d-coloring of H
  EdgeColoring fair_;      // fair distribution of one batch
  std::vector<int> source_of_edge_;  // H_q edge id -> source processor
  std::vector<int> used_of_group_;   // intermediates taken per group
  std::vector<int> intermediate_of_;
  FlatSchedule theorem2_schedule_;
  // Bijectivity check of the Span overload: seen[v] is valid only when
  // stamped with the current validation epoch, so no clearing pass.
  std::vector<long long> image_seen_stamp_;
  long long image_epoch_ = 0;

  // --- Direct-router scratch (CSR coupler queues) ---
  std::vector<int> coupler_count_;   // packets per coupler
  std::vector<int> coupler_offset_;  // prefix sums, coupler_count()+1
  std::vector<int> coupler_queue_;   // sources bucketed by coupler
  int direct_max_demand_ = 0;
  FlatSchedule direct_schedule_;

  // --- Portfolio scratch ---
  // Constructed on the first verifying call: the simulator's
  // per-processor buffers and stamp arrays are the engine's largest
  // arena, and the unverified theorem2/direct paths never touch them.
  std::optional<Network> net_;
  RouteStrategy best_strategy_ = RouteStrategy::kDirect;
  RouteStrategy last_strategy_ = RouteStrategy::kTheorem2;
};

}  // namespace pops
