// Per-instance lower bounds on POPS(d, g) routing time.
//
// Theorem 2's 2 * ceil(d / g) is an upper bound for every permutation;
// the paper's Propositions 1-3 show how tight it is per permutation
// class. lower_bound_slots certifies a slot count no schedule for the
// given instance can beat, combining:
//
//   * the bandwidth bound: every moved packet's first hop leaves its
//     source group through one of that group's min(d, g) usable
//     transmit opportunities per slot (g couplers c(*, j), at most d
//     transmitters), and symmetrically on the receive side — so
//     T >= ceil(max group load / min(d, g)). For a derangement this is
//     ceil(d / g) (Proposition 1), making the Theorem 2 ratio <= 2.
//   * the group-block bounds: when every source group maps as a block
//     onto a single destination group, the paper sharpens the count.
//     A moving block (sigma(j) != j for all j) needs 2 * ceil(d / g)
//     slots (Proposition 2 — Theorem 2 is exactly optimal there); a
//     fixed block with every packet displaced needs
//     2 * ceil(d / (g + 1)) (Proposition 3 — each group owns a single
//     direct coupler c(j, j), and every packet avoiding it must
//     transmit twice).
//
// The d == 1 topology routes any permutation in one slot (Theorem 2),
// so the bound collapses to 1 whenever anything moves.
#pragma once

#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

/// ceil(a / b) for a >= 0, b >= 1.
int ceil_div(int a, int b);

/// A certified lower bound on the number of slots any schedule
/// (direct, relayed, or mixed) needs to realize pi on topo. 0 for the
/// identity.
int lower_bound_slots(const Topology& topo, const Permutation& pi);

/// The h-relation budget of the König decomposition: h partial
/// permutations, each routed at the Theorem 2 bound — so
/// h * theorem2_slots(topo) slots (h when d == 1). The TrafficServer
/// reports executed window slots against exactly this number.
int h_relation_budget(const Topology& topo, int h);

}  // namespace pops
