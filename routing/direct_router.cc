#include "routing/direct_router.h"

#include "routing/engine.h"

namespace pops {

// Compatibility wrapper: the greedy coupler-queue construction lives
// in RoutingEngine::route_direct; this copies the flat schedule into
// the legacy nested-vector plan.
DirectPlan route_direct(const Topology& topo, const Permutation& pi) {
  RoutingEngine engine(topo);
  const FlatSchedule& flat = engine.route_direct(pi);
  DirectPlan plan;
  plan.slots = flat.to_slot_plans();
  plan.max_demand = engine.direct_max_demand();
  return plan;
}

}  // namespace pops
