#include "routing/direct_router.h"

#include <algorithm>

namespace pops {

DirectPlan route_direct(const Topology& topo, const Permutation& pi) {
  POPS_CHECK(pi.size() == topo.processor_count(),
             "route_direct: permutation does not fit the topology");

  // Queue the packets per coupler. Sources are enumerated in order, so
  // each queue lists its packets by source id.
  std::vector<std::vector<int>> queue_of_coupler(
      as_size(topo.coupler_count()));
  for (int source = 0; source < topo.processor_count(); ++source) {
    const int coupler = topo.coupler(topo.group_of(pi(source)),
                                     topo.group_of(source));
    queue_of_coupler[as_size(coupler)].push_back(source);
  }

  DirectPlan plan;
  for (const auto& queue : queue_of_coupler) {
    plan.max_demand = std::max(plan.max_demand, as_int(queue.size()));
  }

  // Slot t drains the t-th packet of every non-empty queue. Distinct
  // couplers per slot by construction; distinct transmitters and
  // receivers because pi is a permutation and each source appears in
  // exactly one queue position.
  for (int slot = 0; slot < plan.max_demand; ++slot) {
    SlotPlan slot_plan;
    for (const auto& queue : queue_of_coupler) {
      if (as_size(slot) >= queue.size()) continue;
      const int source = queue[as_size(slot)];
      slot_plan.transmissions.push_back(
          Transmission{source, pi(source), source});
    }
    plan.slots.push_back(std::move(slot_plan));
  }
  return plan;
}

}  // namespace pops
