#include "routing/portfolio.h"

namespace pops {

// Compatibility wrapper: RoutingEngine::route_best runs both
// candidates and executes both on its internal strict simulator
// (aborting on any violation); this copies the winner into the legacy
// nested-vector plan.
PortfolioPlan best_route(const Topology& topo, const Permutation& pi,
                         const RouterOptions& options) {
  RoutingEngine engine(topo, options);
  const FlatSchedule& flat = engine.route_best(pi);
  PortfolioPlan plan;
  plan.strategy = engine.best_strategy();
  plan.slots = flat.to_slot_plans();
  plan.direct_slot_count = engine.direct_slot_count();
  plan.theorem2_slot_count = engine.theorem2_slot_count();
  return plan;
}

}  // namespace pops
