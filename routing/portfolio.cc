#include "routing/portfolio.h"

#include "routing/verify.h"

namespace pops {

std::string to_string(RouteStrategy strategy) {
  switch (strategy) {
    case RouteStrategy::kDirect:
      return "direct";
    case RouteStrategy::kTheorem2:
      return "theorem2";
  }
  POPS_CHECK(false, "to_string: unknown RouteStrategy");
  return "";
}

PortfolioPlan best_route(const Topology& topo, const Permutation& pi,
                         const RouterOptions& options) {
  DirectPlan direct = route_direct(topo, pi);
  const VerificationResult direct_vr =
      verify_schedule(topo, pi, direct.slots);
  POPS_CHECK(direct_vr.ok,
             "best_route: direct candidate failed verification: " +
                 direct_vr.failure);

  RoutePlan theorem2 = route_permutation(topo, pi, options);
  const VerificationResult theorem2_vr =
      verify_schedule(topo, pi, theorem2.slots);
  POPS_CHECK(theorem2_vr.ok,
             "best_route: Theorem 2 candidate failed verification: " +
                 theorem2_vr.failure);

  PortfolioPlan plan;
  plan.direct_slot_count = direct.slot_count();
  plan.theorem2_slot_count = theorem2.slot_count();
  if (direct.slot_count() <= theorem2.slot_count()) {
    plan.strategy = RouteStrategy::kDirect;
    plan.slots = std::move(direct.slots);
  } else {
    plan.strategy = RouteStrategy::kTheorem2;
    plan.slots = std::move(theorem2.slots);
  }
  return plan;
}

}  // namespace pops
