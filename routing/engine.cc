#include "routing/engine.h"

#include <algorithm>

#include "support/alloc_guard.h"

#include <ostream>

namespace pops {

std::string to_string(const ScratchFootprint& footprint) {
  return str_cat(footprint.units, " units");
}

std::ostream& operator<<(std::ostream& os,
                         const ScratchFootprint& footprint) {
  return os << footprint.units << " units";
}

RoutingEngine::RoutingEngine(const Topology& topo,
                             const RouterOptions& options)
    : topo_(topo),
      options_(options),
      h_(topo.g(), topo.g()),
      h_q_(topo.g(), topo.g()) {
  const int n = topo_.processor_count();
  // Pre-size everything whose final size is known from (d, g) alone,
  // so even the first route call grows as little as possible and the
  // steady state cannot grow at all.
  intermediate_of_.reserve(as_size(n));
  source_of_edge_.reserve(as_size(n));
  used_of_group_.reserve(as_size(topo_.g()));
  theorem2_schedule_.reserve(2 * n, theorem2_slots(topo_));
  // Direct schedules: n transmissions over at most d slots.
  direct_schedule_.reserve(n, topo_.d() + 1);
  coupler_count_.reserve(as_size(topo_.coupler_count()));
  coupler_offset_.reserve(as_size(topo_.coupler_count() + 1));
  coupler_queue_.reserve(as_size(n));
  image_seen_stamp_.assign(as_size(n), 0);
  // Every coloring backend now runs out of flat colorer-owned scratch,
  // so the zero-allocation contract holds regardless of
  // options_.coloring.
  zero_alloc_eligible_ = true;
}

const FlatSchedule& RoutingEngine::route(const Permutation& pi,
                                         const RouteOptions& options) {
  switch (options.strategy) {
    case RouteStrategy::kDirect: {
      const FlatSchedule& schedule = route_direct(pi);
      last_strategy_ = RouteStrategy::kDirect;
      if (options.verify) verify_or_abort(schedule, pi, "direct");
      return schedule;
    }
    case RouteStrategy::kTheorem2: {
      const FlatSchedule& schedule = route_permutation(pi);
      last_strategy_ = RouteStrategy::kTheorem2;
      if (options.verify) verify_or_abort(schedule, pi, "theorem2");
      return schedule;
    }
    case RouteStrategy::kBest: {
      // route_best executes both candidates on the internal simulator
      // unconditionally, so options.verify adds nothing here.
      const FlatSchedule& schedule = route_best(pi);
      last_strategy_ = best_strategy_;
      return schedule;
    }
  }
  POPS_CHECK(false, "route: unknown RouteStrategy");
  return theorem2_schedule_;  // unreachable
}

void RoutingEngine::verify_or_abort(const FlatSchedule& schedule,
                                    const Permutation& pi,
                                    const char* what) {
  if (delivers(schedule, pi)) return;
  // Cold failure path: composing the diagnostic allocates, and the
  // abort must name the broken schedule, not trip the guard.
  ScopedAllocationAllow allow;
  POPS_CHECK(false, str_cat("route: ", what,
                            " schedule failed verification: ",
                            verification_failure()));
}

const FlatSchedule& RoutingEngine::route_permutation(
    const Permutation& pi) {
  ScopedAllocationBan ban("RoutingEngine::route_permutation",
                          warm_theorem2_ && zero_alloc_eligible_);
  // The Permutation constructor already validated bijectivity.
  build_theorem2(Span<const int>(pi.images()));
  return theorem2_schedule_;
}

const FlatSchedule& RoutingEngine::route_permutation(
    Span<const int> images) {
  ScopedAllocationBan ban("RoutingEngine::route_permutation",
                          warm_theorem2_ && zero_alloc_eligible_);
  const int n = topo_.processor_count();
  POPS_CHECK(images.count() == n,
             "route_permutation: image array does not fit the topology");
  ++image_epoch_;
  for (int i = 0; i < n; ++i) {
    const int v = images[as_size(i)];
    POPS_CHECK(v >= 0 && v < n,
               "route_permutation: image out of range");
    POPS_CHECK(image_seen_stamp_[as_size(v)] != image_epoch_,
               "route_permutation: image array is not a permutation");
    image_seen_stamp_[as_size(v)] = image_epoch_;
  }
  build_theorem2(images);
  return theorem2_schedule_;
}

void RoutingEngine::build_theorem2(Span<const int> images) {
  const auto pi = [&images](int i) { return images[as_size(i)]; };
  POPS_CHECK(images.count() == topo_.processor_count(),
             "route_permutation: permutation does not fit the topology");
  const int d = topo_.d();
  const int g = topo_.g();
  const int n = topo_.processor_count();
  theorem2_schedule_.clear();
  intermediate_of_.assign(as_size(n), -1);

  if (d == 1) {
    // One slot: processor == group, so sources and destinations of the
    // n transmissions are pairwise distinct and every coupler carries
    // at most one packet.
    theorem2_schedule_.begin_slot();
    for (int source = 0; source < n; ++source) {
      theorem2_schedule_.push(Transmission{source, pi(source), source});
      intermediate_of_[as_size(source)] = source;
    }
    warm_theorem2_ = true;
    return;
  }

  // H: one edge per packet, source group -> destination group. Edge id
  // == source processor id because sources are added in order and each
  // holds exactly one packet.
  h_.reset(g, g);
  for (int source = 0; source < n; ++source) {
    h_.add_edge(topo_.group_of(source), topo_.group_of(pi(source)));
  }
  colorer_.color(h_, options_.coloring, coloring_);
  POPS_CHECK(coloring_.num_colors == d,
             "Theorem 2: H must be d-edge-colorable");

  const int batches = (d + g - 1) / g;
  for (int q = 0; q < batches; ++q) {
    const int color_lo = q * g;
    const int color_hi = std::min((q + 1) * g, d);

    // H_q: the packets whose H-color falls in this batch. Every group
    // has exactly one edge per color, so H_q is (color_hi - color_lo)-
    // regular with degree <= g.
    h_q_.reset(g, g);
    source_of_edge_.clear();
    for (int source = 0; source < n; ++source) {
      const int c = coloring_.color[as_size(source)];
      if (c < color_lo || c >= color_hi) continue;
      h_q_.add_edge(topo_.group_of(source), topo_.group_of(pi(source)));
      source_of_edge_.push_back(source);
    }

    // Fair distribution: a proper coloring of H_q balanced onto g
    // classes. Properness gives the two distinctness properties; the
    // balanced size (exactly Delta_q <= d per class) is the receiver
    // capacity of an intermediate group.
    colorer_.color(h_q_, options_.coloring, fair_);
    colorer_.spread(h_q_, g, fair_);

    used_of_group_.assign(as_size(g), 0);
    theorem2_schedule_.begin_slot();  // distribute: slot 2q
    for (int e = 0; e < h_q_.edge_count(); ++e) {
      const int source = source_of_edge_[as_size(e)];
      const int mid_group = fair_.color[as_size(e)];
      const int mid_index = used_of_group_[as_size(mid_group)]++;
      POPS_CHECK(mid_index < d,
                 "fair distribution overfilled an intermediate group");
      const int mid = topo_.processor(mid_group, mid_index);
      intermediate_of_[as_size(source)] = mid;
      theorem2_schedule_.push(Transmission{source, mid, source});
    }
    theorem2_schedule_.begin_slot();  // deliver: slot 2q + 1
    for (int e = 0; e < h_q_.edge_count(); ++e) {
      const int source = source_of_edge_[as_size(e)];
      theorem2_schedule_.push(Transmission{
          intermediate_of_[as_size(source)], pi(source), source});
    }
  }

  POPS_CHECK(theorem2_schedule_.slot_count() == theorem2_slots(topo_),
             "Theorem 2 schedule has the wrong number of slots");
  warm_theorem2_ = true;
}

const FlatSchedule& RoutingEngine::route_direct(const Permutation& pi) {
  // The direct builder never colors, so it is eligible regardless of
  // the configured coloring backend.
  ScopedAllocationBan ban("RoutingEngine::route_direct", warm_direct_);
  build_direct(pi);
  return direct_schedule_;
}

void RoutingEngine::build_direct(const Permutation& pi) {
  POPS_CHECK(pi.size() == topo_.processor_count(),
             "route_direct: permutation does not fit the topology");
  const int n = topo_.processor_count();
  const int couplers = topo_.coupler_count();

  // Bucket the packets per coupler (CSR). Sources are enumerated in
  // order, so each bucket lists its packets by source id.
  coupler_count_.assign(as_size(couplers), 0);
  direct_max_demand_ = 0;
  for (int source = 0; source < n; ++source) {
    const int coupler = topo_.coupler(topo_.group_of(pi(source)),
                                      topo_.group_of(source));
    direct_max_demand_ =
        std::max(direct_max_demand_, ++coupler_count_[as_size(coupler)]);
  }
  coupler_offset_.assign(as_size(couplers + 1), 0);
  for (int c = 0; c < couplers; ++c) {
    coupler_offset_[as_size(c + 1)] =
        coupler_offset_[as_size(c)] + coupler_count_[as_size(c)];
  }
  coupler_queue_.resize(as_size(n));
  // Reuse coupler_count_ as the per-coupler fill cursor.
  for (int c = 0; c < couplers; ++c) {
    coupler_count_[as_size(c)] = coupler_offset_[as_size(c)];
  }
  for (int source = 0; source < n; ++source) {
    const int coupler = topo_.coupler(topo_.group_of(pi(source)),
                                      topo_.group_of(source));
    coupler_queue_[as_size(coupler_count_[as_size(coupler)]++)] = source;
  }

  // Slot t drains the t-th packet of every non-empty bucket. Distinct
  // couplers per slot by construction; distinct transmitters and
  // receivers because pi is a permutation and each source appears in
  // exactly one bucket position.
  direct_schedule_.clear();
  for (int slot = 0; slot < direct_max_demand_; ++slot) {
    direct_schedule_.begin_slot();
    for (int c = 0; c < couplers; ++c) {
      const int begin = coupler_offset_[as_size(c)];
      const int end = coupler_offset_[as_size(c + 1)];
      if (end - begin <= slot) continue;
      const int source = coupler_queue_[as_size(begin + slot)];
      direct_schedule_.push(Transmission{source, pi(source), source});
    }
  }
  warm_direct_ = true;
}

const FlatSchedule& RoutingEngine::route_best(const Permutation& pi) {
  ScopedAllocationBan ban("RoutingEngine::route_best",
                          warm_direct_ && warm_theorem2_ && warm_verify_ &&
                              zero_alloc_eligible_);
  build_direct(pi);
  if (!delivers(direct_schedule_, pi)) {
    // Cold failure path: composing the diagnostic allocates, and the
    // abort must name the broken schedule, not trip the guard.
    ScopedAllocationAllow allow;
    POPS_CHECK(false,
               str_cat("best_route: direct candidate failed verification: ",
                       verification_failure()));
  }
  build_theorem2(Span<const int>(pi.images()));
  if (!delivers(theorem2_schedule_, pi)) {
    ScopedAllocationAllow allow;
    POPS_CHECK(
        false,
        str_cat("best_route: Theorem 2 candidate failed verification: ",
                verification_failure()));
  }
  // Direct wins ties: same length, one hop per packet and no relay
  // buffering.
  if (direct_schedule_.slot_count() <=
      theorem2_schedule_.slot_count()) {
    best_strategy_ = RouteStrategy::kDirect;
    return direct_schedule_;
  }
  best_strategy_ = RouteStrategy::kTheorem2;
  return theorem2_schedule_;
}

bool RoutingEngine::delivers(const FlatSchedule& schedule,
                             const Permutation& pi) {
  if (!net_.has_value()) {
    // Constructing the simulator is the one allocating step of the
    // portfolio path; it happens exactly once, on the (unbanned)
    // warm-up call.
    ScopedAllocationAllow allow;
    net_.emplace(topo_);
  }
  net_->reset();
  net_->load_permutation_traffic(pi);
  const bool delivered = net_->execute(schedule) && net_->all_delivered();
  warm_verify_ = true;
  net_->ban_steady_allocations(zero_alloc_eligible_);
  return delivered;
}

std::string RoutingEngine::verification_failure() const {
  if (!net_.has_value()) return "verification never ran";
  return net_->failure().empty()
             ? "schedule executed but left packets undelivered"
             : net_->failure();
}

ScratchFootprint RoutingEngine::scratch_footprint() const {
  ScratchFootprint footprint;
  footprint.units =
      h_.scratch_capacity() + h_q_.scratch_capacity() +
      colorer_.scratch_capacity() + coloring_.color.capacity() +
      fair_.color.capacity() + source_of_edge_.capacity() +
      used_of_group_.capacity() + intermediate_of_.capacity() +
      theorem2_schedule_.transmission_capacity() +
      theorem2_schedule_.offset_capacity() +
      coupler_count_.capacity() + coupler_offset_.capacity() +
      coupler_queue_.capacity() + image_seen_stamp_.capacity() +
      direct_schedule_.transmission_capacity() +
      direct_schedule_.offset_capacity() +
      (net_.has_value() ? net_->scratch_capacity() : 0);
  return footprint;
}

}  // namespace pops
