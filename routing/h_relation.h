// h-relation routing on POPS(d, g) — the compositional consequence of
// Theorem 2.
//
// An h-relation is a set of point-to-point requests in which every
// processor sends at most h packets and receives at most h packets.
// Model the requests as a bipartite multigraph on the n processors
// (one edge per request): its maximum degree is exactly the h of the
// relation, so König edge coloring — the same substrate Theorem 1
// leans on — splits the traffic into h color classes, each a partial
// permutation. Padding each class to a full permutation and routing
// it through the Theorem 2 router gives a verified schedule of
// h * 2 * ceil(d / g) slots (h slots when d = 1).
#pragma once

#include <vector>

#include "perm/permutation.h"
#include "pops/network.h"
#include "routing/router.h"

namespace pops {

/// One packet of an h-relation: `source` must deliver one packet to
/// `destination`. The packet id is the request's index in the vector
/// handed to route_h_relation.
struct Request {
  int source;
  int destination;
};

/// One color class of the decomposition: a partial permutation routed
/// at the Theorem 2 bound.
struct HRelationPhase {
  /// Indices (into the request vector) of the requests this phase
  /// delivers.
  std::vector<int> requests;
  /// Exactly theorem2_slots(topo) slots, restricted to the phase's
  /// real packets (padding transmissions are dropped).
  std::vector<SlotPlan> slots;
};

struct HRelationPlan {
  /// Degree of the relation: the largest number of packets one
  /// processor sends or receives. Equals the number of phases (König).
  int h = 0;
  std::vector<HRelationPhase> phases;

  /// Sum of every phase's slot count: h * theorem2_slots(topo).
  int total_slots() const;
  /// Concatenation of every phase's slots, in phase order — the
  /// executable schedule.
  std::vector<SlotPlan> all_slots() const;
};

/// Decomposes the relation into h partial permutations via edge
/// coloring and routes each through the Theorem 2 router.
HRelationPlan route_h_relation(const Topology& topo,
                               const std::vector<Request>& requests,
                               const RouterOptions& options = {});

}  // namespace pops
