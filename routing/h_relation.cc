#include "routing/h_relation.h"

#include <algorithm>

#include "graph/bipartite_multigraph.h"
#include "graph/edge_coloring.h"
#include "routing/engine.h"

namespace pops {

int HRelationPlan::total_slots() const {
  int total = 0;
  for (const HRelationPhase& phase : phases) {
    total += as_int(phase.slots.size());
  }
  return total;
}

std::vector<SlotPlan> HRelationPlan::all_slots() const {
  std::vector<SlotPlan> slots;
  for (const HRelationPhase& phase : phases) {
    slots.insert(slots.end(), phase.slots.begin(), phase.slots.end());
  }
  return slots;
}

HRelationPlan route_h_relation(const Topology& topo,
                               const std::vector<Request>& requests,
                               const RouterOptions& options) {
  const int n = topo.processor_count();

  // The traffic multigraph: one edge per request, processor to
  // processor, so the edge id is the request id.
  BipartiteMultigraph traffic(n, n);
  for (const Request& request : requests) {
    POPS_CHECK(request.source >= 0 && request.source < n,
               "route_h_relation: request source out of range");
    POPS_CHECK(request.destination >= 0 && request.destination < n,
               "route_h_relation: request destination out of range");
    traffic.add_edge(request.source, request.destination);
  }

  HRelationPlan plan;
  plan.h = traffic.max_degree();
  if (plan.h == 0) return plan;

  const EdgeColoring coloring = color_edges(traffic, options.coloring);
  POPS_CHECK(coloring.num_colors == plan.h,
             "König: an h-relation must be h-edge-colorable");
  std::vector<std::vector<int>> requests_of_color(as_size(plan.h));
  for (int e = 0; e < traffic.edge_count(); ++e) {
    requests_of_color[as_size(coloring.color[as_size(e)])].push_back(e);
  }

  // One engine for all h phases: the Theorem 2 scratch (multigraphs,
  // colorings, flat schedule) warms up on the first phase and is
  // reused by the remaining h - 1, which is where bulk h-relations
  // spend their time.
  RoutingEngine engine(topo, options);
  std::vector<int> image(as_size(n));
  std::vector<int> request_of_source(as_size(n));
  std::vector<bool> destination_used(as_size(n));

  for (int c = 0; c < plan.h; ++c) {
    // By properness, the class is a partial permutation: each
    // processor sends at most one of its packets and receives at most
    // one.
    HRelationPhase phase;
    phase.requests = std::move(requests_of_color[as_size(c)]);
    std::fill(image.begin(), image.end(), -1);
    std::fill(request_of_source.begin(), request_of_source.end(), -1);
    std::fill(destination_used.begin(), destination_used.end(), false);
    for (const int e : phase.requests) {
      const Request& request = requests[as_size(e)];
      image[as_size(request.source)] = request.destination;
      request_of_source[as_size(request.source)] = e;
      destination_used[as_size(request.destination)] = true;
    }

    // Pad to a full permutation (idle sources -> unused destinations,
    // in order) so the Theorem 2 router applies as-is.
    int next_free = 0;
    for (int p = 0; p < n; ++p) {
      if (image[as_size(p)] != -1) continue;
      while (destination_used[as_size(next_free)]) ++next_free;
      image[as_size(p)] = next_free;
      destination_used[as_size(next_free)] = true;
    }

    const FlatSchedule& padded =
        engine.route_permutation(Permutation(image));

    // Dropping the padding transmissions only relaxes the optical
    // constraints, so the filtered schedule stays valid. Each kept
    // transmission is renamed from the engine's packet id (the phase
    // source) to the request id the simulator tracks.
    for (int s = 0; s < padded.slot_count(); ++s) {
      SlotPlan filtered;
      for (const Transmission& t : padded.slot(s)) {
        const int request = request_of_source[as_size(t.packet)];
        if (request == -1) continue;
        filtered.transmissions.push_back(
            Transmission{t.source, t.destination, request});
      }
      phase.slots.push_back(std::move(filtered));
    }
    plan.phases.push_back(std::move(phase));
  }
  return plan;
}

}  // namespace pops
