// The routing API for POPS(d, g) permutation traffic.
//
// Mei & Rizzi (IPDPS 2002): every permutation can be routed in one slot
// when d = 1 and in 2 * ceil(d / g) slots when d > 1. The construction
// is oblivious and two-phase:
//
//   1. Build the d-regular bipartite multigraph H on the g source
//      groups and g destination groups with one edge per packet, and
//      properly edge-color it with d colors (Remark 1 / König).
//   2. Bundle the colors into ceil(d / g) batches of at most g colors.
//      The edges of one batch form a Delta_q-regular multigraph H_q
//      with Delta_q <= g. Re-coloring H_q onto g balanced classes (the
//      "fair distribution") names an intermediate group for every
//      packet such that, per batch, (a) the packets of one source
//      group use distinct intermediate groups and (b) the packets
//      relayed by one intermediate group use distinct destination
//      groups.
//   3. Batch q then takes exactly two slots: slot 2q ships every
//      packet of the batch to a private processor of its intermediate
//      group, slot 2q+1 forwards it to its true destination. All
//      coupler, transmitter and receiver constraints hold by (a), (b)
//      and the properness of the colorings.
//
// One-shot callers use the single entry point
//
//   RouteResult result = route(topo, pi, RouteOptions{...});
//
// which selects a strategy (Theorem 2, the greedy direct router, or
// the verified best-of-both portfolio), optionally verifies the
// schedule on the strict simulator, and returns a FlatSchedule plus
// the strategy that produced it. Bulk callers hold a RoutingEngine
// (routing/engine.h) and call engine.route(pi, options) to reuse the
// scratch arenas; many-permutation throughput callers use
// BatchRouter::route_batch (routing/batch_router.h). The historical
// free functions route_permutation / route_direct / best_route and
// their nested-vector plan types survive as deprecated shims.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_coloring.h"
#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

/// The routing strategies of the portfolio.
enum class RouteStrategy {
  /// Greedy one-hop schedule: exactly max-demand slots. Fast on random
  /// traffic (max demand ~ d/g), degrades to d slots on adversarial
  /// group-block traffic.
  kDirect = 0,
  /// The paper's two-phase construction: a flat 2 * ceil(d / g) slots
  /// (1 slot when d = 1) for ANY permutation.
  kTheorem2 = 1,
  /// Run both, verify both on the strict simulator, keep the shorter
  /// schedule (ties go to direct). Always verified, regardless of
  /// RouteOptions::verify.
  kBest = 2,
};

std::string to_string(RouteStrategy strategy);

struct RouterOptions {
  /// Edge-coloring backend used for both coloring levels.
  ColoringAlgorithm coloring = ColoringAlgorithm::kAlternatingPath;
};

/// Options of the unified route() entry point (and of
/// RoutingEngine::route / BatchRouter::route_batch).
struct RouteOptions {
  RouteStrategy strategy = RouteStrategy::kBest;
  /// Execute the schedule on the strict simulator and abort on any
  /// model violation or misdelivery. kBest verifies both candidates
  /// unconditionally; for kDirect/kTheorem2 this buys the same
  /// guarantee at the cost of one simulated execution.
  bool verify = false;
  /// Edge-coloring backend for the Theorem 2 construction. Ignored by
  /// RoutingEngine::route / BatchRouter, whose backend is fixed at
  /// construction (RouterOptions).
  ColoringAlgorithm coloring = ColoringAlgorithm::kAlternatingPath;
};

/// What route() returns: the schedule in the canonical flat layout,
/// the strategy that actually produced it (the concrete winner when
/// kBest was requested), and its length.
struct RouteResult {
  FlatSchedule schedule;
  RouteStrategy strategy = RouteStrategy::kTheorem2;
  int slot_count = 0;
};

/// The Theorem 2 bound: 1 when d == 1, else 2 * ceil(d / g).
int theorem2_slots(const Topology& topo);

/// One-shot unified entry point: routes pi with options.strategy and
/// returns the verified-on-request result. Constructs a transient
/// RoutingEngine per call — bulk callers hold an engine (or a
/// BatchRouter) instead.
RouteResult route(const Topology& topo, const Permutation& pi,
                  const RouteOptions& options = {});

// ---------------------------------------------------------------------
// Deprecated legacy surface (nested-vector plan types). Every shim
// delegates to the engine; migrate to route() / RoutingEngine::route.

struct RoutePlan {
  /// The schedule: 1 slot when d == 1, else 2 * ceil(d / g).
  std::vector<SlotPlan> slots;
  /// Intermediate processor of each source's packet (the source itself
  /// when the packet is routed directly, as in the d == 1 case).
  std::vector<int> intermediate_of;

  int slot_count() const { return static_cast<int>(slots.size()); }
};

/// Builds a verified-by-construction Theorem 2 schedule for pi.
[[deprecated(
    "use route(topo, pi, {RouteStrategy::kTheorem2}) or "
    "RoutingEngine::route")]]
RoutePlan route_permutation(const Topology& topo, const Permutation& pi,
                            const RouterOptions& options = {});

}  // namespace pops
