// Theorem 2 permutation routing on POPS(d, g).
//
// Mei & Rizzi (IPDPS 2002): every permutation can be routed in one slot
// when d = 1 and in 2 * ceil(d / g) slots when d > 1. The construction
// is oblivious and two-phase:
//
//   1. Build the d-regular bipartite multigraph H on the g source
//      groups and g destination groups with one edge per packet, and
//      properly edge-color it with d colors (Remark 1 / König).
//   2. Bundle the colors into ceil(d / g) batches of at most g colors.
//      The edges of one batch form a Delta_q-regular multigraph H_q
//      with Delta_q <= g. Re-coloring H_q onto g balanced classes (the
//      "fair distribution") names an intermediate group for every
//      packet such that, per batch, (a) the packets of one source
//      group use distinct intermediate groups and (b) the packets
//      relayed by one intermediate group use distinct destination
//      groups.
//   3. Batch q then takes exactly two slots: slot 2q ships every
//      packet of the batch to a private processor of its intermediate
//      group, slot 2q+1 forwards it to its true destination. All
//      coupler, transmitter and receiver constraints hold by (a), (b)
//      and the properness of the colorings.
#pragma once

#include <vector>

#include "graph/edge_coloring.h"
#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

struct RouterOptions {
  /// Edge-coloring backend used for both coloring levels.
  ColoringAlgorithm coloring = ColoringAlgorithm::kAlternatingPath;
};

struct RoutePlan {
  /// The schedule: 1 slot when d == 1, else 2 * ceil(d / g).
  std::vector<SlotPlan> slots;
  /// Intermediate processor of each source's packet (the source itself
  /// when the packet is routed directly, as in the d == 1 case).
  std::vector<int> intermediate_of;

  int slot_count() const { return static_cast<int>(slots.size()); }
};

/// The Theorem 2 bound: 1 when d == 1, else 2 * ceil(d / g).
int theorem2_slots(const Topology& topo);

/// Builds a verified-by-construction Theorem 2 schedule for pi.
RoutePlan route_permutation(const Topology& topo, const Permutation& pi,
                            const RouterOptions& options = {});

}  // namespace pops
