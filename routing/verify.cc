#include "routing/verify.h"

#include "support/format.h"

namespace pops {

VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const std::vector<SlotPlan>& slots) {
  VerificationResult result;
  if (pi.size() != topo.processor_count()) {
    result.failure = str_cat("permutation of size ", pi.size(),
                             " does not fit ", topo.to_string());
    return result;
  }
  Network net(topo);
  net.load_permutation_traffic(pi);
  if (!net.execute(slots)) {
    result.failure = net.failure();
    return result;
  }
  // Full, correct delivery: every processor ends up holding exactly the
  // packet addressed to it.
  for (int p = 0; p < topo.processor_count(); ++p) {
    for (const Packet& packet : net.buffer(p)) {
      if (packet.destination != p) {
        result.failure = str_cat(
            "packet ", packet.id, " (", packet.source, " -> ",
            packet.destination, ") stranded at processor ", p, " after ",
            slots.size(), " slots");
        return result;
      }
    }
  }
  const Permutation inverse = pi.inverse();
  for (int p = 0; p < topo.processor_count(); ++p) {
    const int expected_id = inverse(p);
    bool found = false;
    for (const Packet& packet : net.buffer(p)) {
      if (packet.id == expected_id && packet.destination == p) {
        found = true;
        break;
      }
    }
    if (!found) {
      result.failure =
          str_cat("processor ", p, " never received packet ",
                  expected_id, " (misdelivered or dropped)");
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace pops
