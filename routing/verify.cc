#include "routing/verify.h"

#include "routing/h_relation.h"
#include "support/format.h"

namespace pops {
namespace {

// "" when every packet sits at its destination, else a description of
// the first stranded (undelivered or misdelivered) packet.
std::string first_stranded_packet(const Network& net) {
  const Topology& topo = net.topology();
  for (int p = 0; p < topo.processor_count(); ++p) {
    for (const Packet& packet : net.buffer(p)) {
      if (packet.destination != p) {
        return str_cat("packet ", packet.id, " (", packet.source, " -> ",
                       packet.destination, ") stranded at processor ", p,
                       " after ", net.stats().slots_executed, " slots");
      }
    }
  }
  return "";
}

// Shared tail of both verify_schedule overloads: the schedule has
// already been executed on `net`; check full, correct delivery.
VerificationResult check_permutation_delivery(const Network& net,
                                              const Permutation& pi) {
  VerificationResult result;
  const Topology& topo = net.topology();
  // Full, correct delivery: every processor ends up holding exactly the
  // packet addressed to it.
  result.failure = first_stranded_packet(net);
  if (!result.failure.empty()) return result;
  const Permutation inverse = pi.inverse();
  for (int p = 0; p < topo.processor_count(); ++p) {
    const int expected_id = inverse(p);
    bool found = false;
    for (const Packet& packet : net.buffer(p)) {
      if (packet.id == expected_id && packet.destination == p) {
        found = true;
        break;
      }
    }
    if (!found) {
      result.failure =
          str_cat("processor ", p, " never received packet ",
                  expected_id, " (misdelivered or dropped)");
      return result;
    }
  }
  result.ok = true;
  return result;
}

// Shared body of both verify_schedule overloads; ExecuteFn runs the
// schedule on the loaded network and returns Network::execute's
// verdict. A callable (instead of the schedule itself) keeps the
// nested legacy layout off the canonical path: the deprecated
// overload loops execute_slot rather than calling the deprecated
// Network::execute(vector<SlotPlan>).
template <typename ExecuteFn>
VerificationResult verify_schedule_impl(const Topology& topo,
                                        const Permutation& pi,
                                        ExecuteFn&& execute) {
  VerificationResult result;
  if (pi.size() != topo.processor_count()) {
    result.failure = str_cat("permutation of size ", pi.size(),
                             " does not fit ", topo.to_string());
    return result;
  }
  Network net(topo);
  net.load_permutation_traffic(pi);
  if (!execute(net)) {
    result.failure = net.failure();
    return result;
  }
  return check_permutation_delivery(net, pi);
}

}  // namespace

VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const std::vector<SlotPlan>& slots) {
  return verify_schedule_impl(topo, pi, [&slots](Network& net) {
    for (const SlotPlan& slot : slots) {
      if (!net.execute_slot(slot)) return false;
    }
    return true;
  });
}

VerificationResult verify_schedule(const Topology& topo,
                                   const Permutation& pi,
                                   const FlatSchedule& schedule) {
  return verify_schedule_impl(topo, pi, [&schedule](Network& net) {
    return net.execute(schedule);
  });
}

std::string verify_h_relation(const Topology& topo,
                              const std::vector<Request>& requests,
                              const HRelationPlan& plan) {
  const int n = topo.processor_count();
  Network net(topo);
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& request = requests[k];
    if (request.source < 0 || request.source >= n ||
        request.destination < 0 || request.destination >= n) {
      return str_cat("request ", k, " (", request.source, " -> ",
                     request.destination, ") does not fit ",
                     topo.to_string());
    }
    net.load_packet(
        Packet{as_int(k), request.source, request.destination, 1, 0});
  }
  // Execute phase by phase, slot by slot — no nested all_slots() copy
  // and no call into the deprecated vector<SlotPlan> execute path.
  for (const HRelationPhase& phase : plan.phases) {
    for (const SlotPlan& slot : phase.slots) {
      if (!net.execute_slot(slot)) return net.failure();
    }
  }
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& request = requests[k];
    bool found = false;
    for (const Packet& packet : net.buffer(request.destination)) {
      if (packet.id == as_int(k)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return str_cat("request ", k, " (", request.source, " -> ",
                     request.destination, ") was not delivered after ",
                     plan.total_slots(), " slots");
    }
  }
  return first_stranded_packet(net);
}

}  // namespace pops
