// Experiment E11 — the streaming traffic server (serve/) under
// sustained open-loop load.
//
// Every row is a long-running TrafficServer draining an arrival
// generator: demands accumulate into h-relation windows, each window
// is routed by the reused engine at the h * 2*ceil(d/g) budget and
// executed on the strict simulator (the server aborts on any
// unverified window, so a routing regression kills the bench). The
// soak section drives tier().soak_windows windows (overridable with
// POPS_TRAFFIC_SOAK_WINDOWS) through the tier's first serve point and
// checks that the server's scratch footprint stayed flat after
// warm-up — the zero-allocation contract under system-shaped load,
// not just per-call.
#include <cstdlib>

#include "bench_common.h"
#include "pops/patterns.h"
#include "routing/bounds.h"
#include "serve/traffic_server.h"
#include "support/format.h"
#include "support/table.h"

namespace pops::bench {
namespace {

long long soak_windows() {
  // CI's sanitizer jobs shorten the soak to a few hundred windows via
  // this env var; the tier default exercises a tier-shaped run.
  if (const char* env = std::getenv("POPS_TRAFFIC_SOAK_WINDOWS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return tier().soak_windows;
}

ArrivalConfig arrival_config(ArrivalProcess process, std::uint64_t seed) {
  ArrivalConfig config;
  config.process = process;
  config.seed = seed;
  config.mean_gap_ticks = 1;
  config.mean_burst_length = 24;
  config.mean_off_gap_ticks = 64;
  return config;
}

ServerConfig server_config(int window_degree) {
  ServerConfig config;
  config.max_window_degree = window_degree;
  config.max_window_demands = tier().max_window_demands;
  return config;
}

void drive_windows(TrafficServer& server, ArrivalGenerator& generator,
                   long long windows) {
  while (server.stats().windows_routed < windows) {
    server.submit(generator.next());
  }
}

void add_row(Table& table, const Topology& topo, ArrivalProcess process,
             const TrafficServer& server) {
  const ServerStats& stats = server.stats();
  const double ticks = static_cast<double>(server.now());
  table.add(topo.to_string(), to_string(process), stats.windows_routed,
            stats.demands_routed, stats.max_window_degree,
            stats.slots_executed, stats.budget_slots,
            as_int(static_cast<std::size_t>(
                stats.queueing_delay.percentile(0.50))),
            as_int(static_cast<std::size_t>(
                stats.queueing_delay.percentile(0.99))),
            ticks > 0 ? format_double(
                            static_cast<double>(stats.demands_routed) /
                                ticks,
                            2)
                      : "-");
}

void print_tables() {
  const int windows = tier().serve_table_windows;
  std::cout << "=== E11a: traffic server, " << windows
            << " windows per arrival process (verified) ===\n";
  Table table({"topology", "arrivals", "windows", "demands", "h_max",
               "slots", "budget", "delay_p50", "delay_p99",
               "demands/tick"});
  for (const ServePoint point : tier().serve_grid) {
    const Topology topo(point.d, point.g);
    for (const ArrivalProcess process : kAllArrivalProcesses) {
      TrafficServer server(topo, server_config(point.window_degree));
      ArrivalGenerator generator(topo, arrival_config(process, 11));
      drive_windows(server, generator, windows);
      server.flush();
      add_row(table, topo, process, server);
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: slots == budget on every row (each window\n"
               "routes at exactly h * 2*ceil(d/g) slots; h slots when\n"
               "d = 1), bursty rows show the largest p99 queueing delay.\n\n";

  const long long soak = soak_windows();
  const ServePoint point = tier().serve_grid.front();
  const Topology topo(point.d, point.g);
  std::cout << "=== E11b: soak — " << soak << " windows on "
            << topo.to_string() << ", uniform arrivals ===\n";
  TrafficServer server(topo, server_config(point.window_degree));
  ArrivalGenerator generator(topo, arrival_config(
                                       ArrivalProcess::kUniform, 7));
  const long long warmup = std::max<long long>(100, soak / 10);
  drive_windows(server, generator, warmup);
  const ScratchFootprint warm = server.scratch_footprint();
  drive_windows(server, generator, soak);
  server.flush();
  const ScratchFootprint done = server.scratch_footprint();
  POPS_CHECK(warm == done,
             "traffic soak grew server scratch after warm-up "
             "(steady-state allocation)");
  const ServerStats& stats = server.stats();
  Table soak_table({"windows", "demands", "slots", "budget", "delay_p50",
                    "delay_p99", "delay_mean", "footprint"});
  soak_table.add(stats.windows_routed, stats.demands_routed,
                 stats.slots_executed, stats.budget_slots,
                 as_int(static_cast<std::size_t>(
                     stats.queueing_delay.percentile(0.50))),
                 as_int(static_cast<std::size_t>(
                     stats.queueing_delay.percentile(0.99))),
                 format_double(stats.queueing_delay.mean(), 2),
                 str_cat(done.units, " (flat after warm-up)"));
  soak_table.print(std::cout);
  std::cout << "Expected shape: footprint identical before and after the\n"
               "post-warm-up soak (the POPS_CHECK above enforces it).\n\n";
}

void serve_benchmark(benchmark::State& state, ArrivalProcess process) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  TrafficServer server(topo,
                       server_config(static_cast<int>(state.range(2))));
  ArrivalGenerator generator(topo, arrival_config(process, 56));
  // Warm the arenas so the timed loop measures steady-state serving.
  drive_windows(server, generator, 2);
  for (auto _ : state) {
    server.submit(generator.next());
  }
  server.flush();
  state.SetItemsProcessed(state.iterations());
  const ServerStats& stats = server.stats();
  state.counters["windows"] =
      benchmark::Counter(static_cast<double>(stats.windows_routed));
  state.counters["delay_p50_ticks"] = benchmark::Counter(
      static_cast<double>(stats.queueing_delay.percentile(0.50)));
  state.counters["delay_p99_ticks"] = benchmark::Counter(
      static_cast<double>(stats.queueing_delay.percentile(0.99)));
  state.counters["slots_per_window"] =
      benchmark::Counter(stats.slots_per_window());
  state.counters["demands_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_ServeUniform(benchmark::State& state) {
  serve_benchmark(state, ArrivalProcess::kUniform);
}
void BM_ServeZipfHotGroup(benchmark::State& state) {
  serve_benchmark(state, ArrivalProcess::kZipfHotGroup);
}
void BM_ServeBurstyOnOff(benchmark::State& state) {
  serve_benchmark(state, ArrivalProcess::kBurstyOnOff);
}

void register_tier_benches() {
  auto* uniform =
      benchmark::RegisterBenchmark("BM_ServeUniform", BM_ServeUniform);
  auto* zipf = benchmark::RegisterBenchmark("BM_ServeZipfHotGroup",
                                            BM_ServeZipfHotGroup);
  auto* bursty = benchmark::RegisterBenchmark("BM_ServeBurstyOnOff",
                                              BM_ServeBurstyOnOff);
  for (const ServePoint point : tier().serve_grid) {
    uniform->Args({point.d, point.g, point.window_degree});
    zipf->Args({point.d, point.g, point.window_degree});
    bursty->Args({point.d, point.g, point.window_degree});
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
