// Experiment E5 — optimality (Propositions 1-3).
//
// For each permutation class the paper bounds, compare the measured slot
// count of the Theorem 2 routing against the applicable lower bound:
//   derangements            : LB = ceil(d/g), ratio <= 2       (Prop 1)
//   group-block, group-moving: LB = 2*ceil(d/g), ratio = 1     (Prop 2)
//   group-block, group-fixed : LB = 2*ceil(d/(g+1))            (Prop 3)
// The (d, g) shapes come from the active tier's grid.
#include "bench_common.h"
#include "perm/families.h"
#include "routing/bounds.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"

namespace pops::bench {
namespace {

void add_row(Table& table, const char* klass, const Topology& topo,
             const Permutation& pi) {
  const int measured = verified_slot_count(topo, pi);
  const int bound = lower_bound_slots(topo, pi);
  table.add(klass, topo.to_string(), bound, measured,
            bound > 0 ? format_double(static_cast<double>(measured) /
                                          static_cast<double>(bound),
                                      2)
                      : "-");
}

void print_tables() {
  std::cout << "=== E5: lower bounds vs. measured Theorem 2 slots ===\n";
  Rng rng(5);
  Table table({"class", "topology", "lower bound", "measured", "ratio"});
  for (const GridPoint point : tier().grid) {
    const int d = point.d;
    const int g = point.g;
    const Topology topo(d, g);
    const int n = topo.processor_count();

    if (n > 1) {
      add_row(table, "derangement (Prop 1)", topo,
              Permutation::random_derangement(n, rng));
    }
    add_row(table, "group-block moving (Prop 2)", topo,
            group_rotation(d, g, g > 1 ? 1 : 0));
    // Reversal is a moving group-block only for even g: odd g leaves
    // the middle group in place, so Prop 2 does not apply there.
    add_row(table,
            g % 2 == 0 ? "vector reversal (Prop 2)"
                       : "vector reversal (mid group fixed)",
            topo, vector_reversal(n));

    // Prop 3 family: groups fixed, every packet moved within its group.
    std::vector<Permutation> within(as_size(g), cyclic_shift(d, 1));
    add_row(table, "group-block fixed (Prop 3)", topo,
            group_block(d, g, Permutation::identity(g), within));
  }
  table.print(std::cout);
  std::cout << "Expected shape: ratio == 1.00 on the Prop 2 rows (Theorem 2\n"
               "is exactly optimal there); ratio <= 2.00 everywhere else,\n"
               "approaching 2 on the Prop 1 rows and on reversal with an\n"
               "odd g (where the middle group stays put).\n\n";
}

void BM_LowerBound(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(48);
  const Permutation pi =
      Permutation::random_derangement(topo.processor_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lower_bound_slots(topo, pi));
  }
  state.SetItemsProcessed(state.iterations());  // bounds computed
}

void register_tier_benches() {
  auto* bound =
      benchmark::RegisterBenchmark("BM_LowerBound", BM_LowerBound);
  for (const GridPoint point : tier().grid) {
    bound->Args({point.d, point.g});
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
