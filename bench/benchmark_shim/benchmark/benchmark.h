// Minimal header-only stand-in for google-benchmark.
//
// Build-time fallback used when neither an installed google-benchmark
// nor FetchContent is available (e.g. a network-less container). It
// implements just the API surface the bench/ binaries use — State
// iteration, BENCHMARK()->Args(), counters, the
// --benchmark_min_time flag, and the --benchmark_format /
// --benchmark_out / --benchmark_out_format=json reporters the smoke
// script uses to accumulate the perf trajectory — with a simple
// doubling calibration loop. Numbers from the shim are honest
// wall-clock measurements but lack the real library's statistics. CI
// exercises both resolutions: the build-test and sanitize jobs use the
// real library via FetchContent, and the hermetic shim job smoke-runs
// every bench on this header.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

/// User counter (subset of the real library's benchmark::Counter):
/// plain values are reported as-is; kIsRate values are divided by the
/// run's elapsed seconds.
class Counter {
 public:
  enum Flags {
    kDefaults = 0,
    kIsRate = 1 << 0,
  };

  Counter(double v = 0.0, Flags f = kDefaults)  // NOLINT(runtime/explicit)
      : value(v), flags(f) {}
  operator double() const { return value; }  // NOLINT(runtime/explicit)

  double value;
  Flags flags;
};

using UserCounters = std::map<std::string, Counter>;

class State {
 public:
  State(std::vector<std::int64_t> args, std::int64_t iterations)
      : args_(std::move(args)), max_iterations_(iterations) {}

  UserCounters counters;

  struct Sentinel {};
  struct Iterator {
    std::int64_t remaining;
    bool operator!=(Sentinel) const { return remaining > 0; }
    void operator++() { --remaining; }
    int operator*() const { return 0; }
  };
  Iterator begin() { return Iterator{max_iterations_}; }
  Sentinel end() { return Sentinel{}; }

  std::int64_t range(std::size_t i = 0) const {
    return i < args_.size() ? args_[i] : 0;
  }
  std::int64_t iterations() const { return max_iterations_; }
  void SetItemsProcessed(std::int64_t items) { items_processed_ = items; }
  std::int64_t items_processed() const { return items_processed_; }
  void SetLabel(const std::string& label) { label_ = label; }
  const std::string& label() const { return label_; }

 private:
  std::vector<std::int64_t> args_;
  std::int64_t max_iterations_;
  std::int64_t items_processed_ = 0;
  std::string label_;
};

template <typename T>
inline void DoNotOptimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(&value) : "memory");
#else
  volatile const T* sink = &value;
  (void)sink;
#endif
}

namespace internal {

// std::function rather than a raw pointer so RegisterBenchmark()
// accepts the same callables the real library does (lambdas included),
// not just the BENCHMARK() macro's plain functions.
using Function = std::function<void(State&)>;

struct Registration {
  std::string name;
  Function function;
  std::vector<std::vector<std::int64_t>> arg_sets;
};

// Deques for stable addresses; static storage so LeakSanitizer stays
// quiet in shim + asan builds (the registrations live for the whole
// program anyway).
inline std::deque<Registration>& registry() {
  static std::deque<Registration> benchmarks;
  return benchmarks;
}

inline double& min_time() {
  static double seconds = 0.1;
  return seconds;
}

inline std::int64_t& fixed_iterations() {
  static std::int64_t iterations = 0;  // 0 = time-based calibration
  return iterations;
}

// Reporter configuration (--benchmark_format / --benchmark_out*).
inline bool& console_json() {
  static bool json = false;  // --benchmark_format=json
  return json;
}

inline std::string& out_path() {
  static std::string path;  // --benchmark_out=<file> ("" = none)
  return path;
}

struct Result {
  std::string name;
  std::int64_t iterations;
  double ns_per_iter;
  double items_per_second;  // 0 when not set
  std::string label;
  // User counters, rate flags already applied.
  std::map<std::string, double> counters;
};

inline std::vector<Result>& results() {
  static std::vector<Result> collected;
  return collected;
}

inline std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
      escaped.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      escaped += buffer;
    } else {
      escaped.push_back(c);
    }
  }
  return escaped;
}

// google-benchmark-shaped JSON: a context object plus one entry per
// run in "benchmarks". Labels (SetLabel) are arbitrary strings, so
// every emitted string is escaped.
inline void write_json(std::FILE* file) {
  std::fprintf(file,
               "{\n  \"context\": {\n    \"library\": "
               "\"popsnet-benchmark-shim\",\n    \"caches\": []\n  },\n"
               "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results().size(); ++i) {
    const Result& result = results()[i];
    const std::string name = json_escape(result.name);
    std::fprintf(file,
                 "    {\n      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": %lld,\n"
                 "      \"real_time\": %.4f,\n"
                 "      \"cpu_time\": %.4f,\n"
                 "      \"time_unit\": \"ns\"",
                 name.c_str(), name.c_str(),
                 static_cast<long long>(result.iterations),
                 result.ns_per_iter, result.ns_per_iter);
    if (result.items_per_second > 0) {
      std::fprintf(file, ",\n      \"items_per_second\": %.4f",
                   result.items_per_second);
    }
    for (const auto& [counter_name, value] : result.counters) {
      std::fprintf(file, ",\n      \"%s\": %.4f",
                   json_escape(counter_name).c_str(), value);
    }
    if (!result.label.empty()) {
      std::fprintf(file, ",\n      \"label\": \"%s\"",
                   json_escape(result.label).c_str());
    }
    std::fprintf(file, "\n    }%s\n",
                 i + 1 < results().size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
}

class Benchmark {
 public:
  explicit Benchmark(Registration* registration)
      : registration_(registration) {}

  Benchmark* Args(std::vector<std::int64_t> args) {
    registration_->arg_sets.push_back(std::move(args));
    return this;
  }
  Benchmark* Arg(std::int64_t arg) { return Args({arg}); }

 private:
  Registration* registration_;
};

inline double run_once(Function function,
                       const std::vector<std::int64_t>& args,
                       std::int64_t iterations, State* out_state) {
  State state(args, iterations);
  const auto start = std::chrono::steady_clock::now();
  function(state);
  const auto stop = std::chrono::steady_clock::now();
  if (out_state != nullptr) *out_state = state;
  return std::chrono::duration<double>(stop - start).count();
}

inline void run_registration(const Registration& registration) {
  std::vector<std::vector<std::int64_t>> arg_sets =
      registration.arg_sets;
  if (arg_sets.empty()) arg_sets.push_back({});
  for (const auto& args : arg_sets) {
    std::int64_t iterations = 1;
    double seconds = 0;
    State state({}, 0);
    if (fixed_iterations() > 0) {
      iterations = fixed_iterations();
      seconds = run_once(registration.function, args, iterations, &state);
    } else {
      while (true) {
        seconds =
            run_once(registration.function, args, iterations, &state);
        if (seconds >= min_time() || iterations >= (1LL << 30)) break;
        iterations *= 2;
      }
    }
    std::string name = registration.name;
    for (const auto arg : args) {
      name += "/" + std::to_string(arg);
    }
    const double ns_per_iter =
        seconds * 1e9 / static_cast<double>(iterations);
    const double items_per_second =
        state.items_processed() > 0 && seconds > 0
            ? static_cast<double>(state.items_processed()) / seconds
            : 0.0;
    std::map<std::string, double> counters;
    for (const auto& [counter_name, counter] : state.counters) {
      counters[counter_name] =
          (counter.flags & Counter::kIsRate) && seconds > 0
              ? counter.value / seconds
              : counter.value;
    }
    results().push_back(Result{name, iterations, ns_per_iter,
                               items_per_second, state.label(),
                               std::move(counters)});
    if (console_json()) continue;
    const Result& reported = results().back();
    std::printf("%-48s %12.1f ns %10lld iters", name.c_str(),
                ns_per_iter, static_cast<long long>(iterations));
    if (items_per_second > 0) {
      std::printf("  %10.2f M items/s", items_per_second / 1e6);
    }
    for (const auto& [counter_name, value] : reported.counters) {
      std::printf("  %s=%.3g", counter_name.c_str(), value);
    }
    if (!state.label().empty()) {
      std::printf("  %s", state.label().c_str());
    }
    std::printf("\n");
  }
}

inline std::deque<Benchmark>& benchmark_handles() {
  static std::deque<Benchmark> handles;
  return handles;
}

inline Benchmark* register_benchmark(const char* name,
                                     Function function) {
  registry().push_back(Registration{name, std::move(function), {}});
  benchmark_handles().emplace_back(&registry().back());
  return &benchmark_handles().back();
}

}  // namespace internal

/// Runtime registration, mirroring the real library's
/// benchmark::RegisterBenchmark: the tier-aware benches call this
/// after the tier is resolved, because their Args grids are not known
/// at static-initialization time.
template <typename Callable>
inline internal::Benchmark* RegisterBenchmark(const char* name,
                                              Callable&& function) {
  return internal::register_benchmark(
      name, internal::Function(std::forward<Callable>(function)));
}

inline void Initialize(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const char* min_time_prefix = "--benchmark_min_time=";
    const char* format_prefix = "--benchmark_format=";
    const char* out_prefix = "--benchmark_out=";
    if (std::strncmp(arg, min_time_prefix,
                     std::strlen(min_time_prefix)) == 0) {
      const char* value = arg + std::strlen(min_time_prefix);
      char* suffix = nullptr;
      const double parsed = std::strtod(value, &suffix);
      if (suffix != nullptr && *suffix == 'x') {
        internal::fixed_iterations() =
            parsed < 1 ? 1 : static_cast<std::int64_t>(parsed);
      } else {
        internal::min_time() = parsed;
      }
      continue;  // consumed
    }
    if (std::strncmp(arg, format_prefix, std::strlen(format_prefix)) ==
        0) {
      internal::console_json() =
          std::strcmp(arg + std::strlen(format_prefix), "json") == 0;
      continue;  // consumed
    }
    // The '=' in the prefix keeps --benchmark_out_format from
    // matching here; that flag falls through to accept-and-ignore.
    if (std::strncmp(arg, out_prefix, std::strlen(out_prefix)) == 0) {
      internal::out_path() = arg + std::strlen(out_prefix);
      continue;  // consumed
    }
    if (std::strncmp(arg, "--benchmark_", 12) == 0) {
      // Accept-and-ignore other benchmark flags
      // (--benchmark_out_format only supports json, which is also the
      // only value the real library writes for *_out files we use).
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
}

inline bool ReportUnrecognizedArguments(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "unrecognized argument: %s\n", argv[i]);
  }
  return argc > 1;
}

inline void RunSpecifiedBenchmarks() {
  internal::results().clear();
  if (!internal::console_json()) {
    std::printf("%-48s %15s %16s\n", "Benchmark (shim)", "Time",
                "Iterations");
    std::printf("%s\n", std::string(81, '-').c_str());
  }
  for (const internal::Registration& registration :
       internal::registry()) {
    internal::run_registration(registration);
  }
  if (internal::console_json()) {
    internal::write_json(stdout);
  }
  if (!internal::out_path().empty()) {
    std::FILE* file = std::fopen(internal::out_path().c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "could not open --benchmark_out file %s\n",
                   internal::out_path().c_str());
      std::exit(1);
    }
    internal::write_json(file);
    std::fclose(file);
  }
}

inline void Shutdown() {}

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT(a, b) a##b
#define BENCHMARK_PRIVATE_NAME(line) \
  BENCHMARK_PRIVATE_CONCAT(benchmark_registration_, line)
#define BENCHMARK(function)                                   \
  static ::benchmark::internal::Benchmark* BENCHMARK_PRIVATE_NAME( \
      __LINE__) = ::benchmark::internal::register_benchmark(#function, \
                                                            function)
