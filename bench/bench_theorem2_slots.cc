// Experiment E1 — the Theorem 2 table.
//
// Paper claim: POPS(d,g) routes ANY permutation in 1 slot (d = 1) and
// 2*ceil(d/g) slots (d > 1). The table sweeps the tier's (d, g) grid and
// several permutation classes; "measured" is the slot count of an
// executed, verified schedule. Every row must satisfy measured == formula.
#include <vector>

#include "bench_common.h"
#include "perm/families.h"
#include "pops/network.h"
#include "routing/batch_router.h"
#include "routing/engine.h"
#include "support/prng.h"
#include "support/table.h"

namespace pops::bench {
namespace {

void print_tables() {
  std::cout << "=== E1: Theorem 2 slot counts (measured vs. formula) ===\n";
  Table table({"topology", "n", "formula", "random", "derangement",
               "reversal", "group-rot", "identity"});
  Rng rng(1);
  for (const int d : tier().table_axis) {
    for (const int g : tier().table_axis) {
      const Topology topo(d, g);
      const int n = topo.processor_count();
      const int random_slots =
          verified_slot_count(topo, Permutation::random(n, rng));
      const int derangement_slots =
          n > 1
              ? verified_slot_count(topo,
                                    Permutation::random_derangement(n, rng))
              : random_slots;
      const int reversal_slots =
          verified_slot_count(topo, vector_reversal(n));
      const int rot_slots = verified_slot_count(
          topo, group_rotation(d, g, g > 1 ? 1 : 0));
      const int id_slots =
          verified_slot_count(topo, Permutation::identity(n));
      table.add(topo.to_string(), n, theorem2_slots(topo), random_slots,
                derangement_slots, reversal_slots, rot_slots, id_slots);
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: every measured column equals the formula "
               "column.\n\n";
}

// The engine-vs-wrapper throughput counter: perms_per_sec is permutations
// routed per second at fixed (d, g). Both variants run the identical
// Theorem 2 construction; the route() wrapper additionally pays a fresh
// RoutingEngine (all scratch arenas) plus the result copy per call, so
// the engine row must be visibly faster.
void BM_RoutePermutation(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(42);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  const RouteOptions options{RouteStrategy::kTheorem2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(route(topo, pi, options));
  }
  state.SetItemsProcessed(state.iterations());  // permutations routed
  state.counters["perms_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_EngineRoutePermutation(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(42);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  RoutingEngine engine(topo);
  engine.route_permutation(pi);  // warm the scratch arenas
  for (auto _ : state) {
    benchmark::DoNotOptimize(&engine.route_permutation(pi));
  }
  state.SetItemsProcessed(state.iterations());  // permutations routed
  state.counters["perms_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_RouteAndExecute(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(43);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  const RouteResult plan = route(topo, pi, {RouteStrategy::kTheorem2});
  Network net(topo);
  for (auto _ : state) {
    net.load_permutation_traffic(pi);
    net.execute(plan.schedule);
    benchmark::DoNotOptimize(net.all_delivered());
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count());
}

// Batch throughput: one route_batch call per iteration over
// tier().batch_perms pre-generated random permutations, swept across
// the tier's worker counts (the third Args dimension). perms_per_sec
// at `threads = t` over perms_per_sec of BM_EngineRoutePermutation is
// the pool's scaling factor — instances share nothing, so it should
// track the core count until memory bandwidth saturates.
void BM_BatchRoute(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(44);
  std::vector<Permutation> perms;
  perms.reserve(as_size(tier().batch_perms));
  for (int i = 0; i < tier().batch_perms; ++i) {
    perms.push_back(Permutation::random(topo.processor_count(), rng));
  }
  std::vector<FlatSchedule> results(perms.size());
  BatchRouterConfig config;
  config.threads = static_cast<int>(state.range(2));
  BatchRouter router(topo, config);
  const RouteOptions options{RouteStrategy::kTheorem2};
  router.route_batch(perms, results, options);  // warm the result slots
  for (auto _ : state) {
    router.route_batch(perms, results, options);
  }
  const double routed =
      static_cast<double>(state.iterations()) * perms.size();
  state.SetItemsProcessed(static_cast<long long>(routed));
  state.counters["perms_per_sec"] =
      benchmark::Counter(routed, benchmark::Counter::kIsRate);
}

void register_tier_benches() {
  auto* route = benchmark::RegisterBenchmark("BM_RoutePermutation",
                                             BM_RoutePermutation);
  auto* engine = benchmark::RegisterBenchmark("BM_EngineRoutePermutation",
                                              BM_EngineRoutePermutation);
  auto* execute = benchmark::RegisterBenchmark("BM_RouteAndExecute",
                                               BM_RouteAndExecute);
  auto* batch =
      benchmark::RegisterBenchmark("BM_BatchRoute", BM_BatchRoute);
  for (const GridPoint point : tier().grid) {
    route->Args({point.d, point.g});
    engine->Args({point.d, point.g});
    execute->Args({point.d, point.g});
    for (const int threads : tier().batch_threads) {
      batch->Args({point.d, point.g, threads});
    }
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
