// Experiment E1 — the Theorem 2 table.
//
// Paper claim: POPS(d,g) routes ANY permutation in 1 slot (d = 1) and
// 2*ceil(d/g) slots (d > 1). The table sweeps the tier's (d, g) grid and
// several permutation classes; "measured" is the slot count of an
// executed, verified schedule. Every row must satisfy measured == formula.
#include <vector>

#include "bench_common.h"
#include "perm/families.h"
#include "pops/network.h"
#include "routing/engine.h"
#include "support/prng.h"
#include "support/table.h"

namespace pops::bench {
namespace {

void print_tables() {
  std::cout << "=== E1: Theorem 2 slot counts (measured vs. formula) ===\n";
  Table table({"topology", "n", "formula", "random", "derangement",
               "reversal", "group-rot", "identity"});
  Rng rng(1);
  for (const int d : tier().table_axis) {
    for (const int g : tier().table_axis) {
      const Topology topo(d, g);
      const int n = topo.processor_count();
      const int random_slots =
          verified_slot_count(topo, Permutation::random(n, rng));
      const int derangement_slots =
          n > 1
              ? verified_slot_count(topo,
                                    Permutation::random_derangement(n, rng))
              : random_slots;
      const int reversal_slots =
          verified_slot_count(topo, vector_reversal(n));
      const int rot_slots = verified_slot_count(
          topo, group_rotation(d, g, g > 1 ? 1 : 0));
      const int id_slots =
          verified_slot_count(topo, Permutation::identity(n));
      table.add(topo.to_string(), n, theorem2_slots(topo), random_slots,
                derangement_slots, reversal_slots, rot_slots, id_slots);
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: every measured column equals the formula "
               "column.\n\n";
}

// The engine-vs-wrapper throughput counter: perms_per_sec is permutations
// routed per second at fixed (d, g). Both variants run the identical
// Theorem 2 construction; the wrapper additionally pays a fresh
// RoutingEngine (all scratch arenas) plus the flat-to-nested plan copy
// per call, so the engine row must be visibly faster.
void BM_RoutePermutation(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(42);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_permutation(topo, pi));
  }
  state.SetItemsProcessed(state.iterations());  // permutations routed
  state.counters["perms_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_EngineRoutePermutation(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(42);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  RoutingEngine engine(topo);
  engine.route_permutation(pi);  // warm the scratch arenas
  for (auto _ : state) {
    benchmark::DoNotOptimize(&engine.route_permutation(pi));
  }
  state.SetItemsProcessed(state.iterations());  // permutations routed
  state.counters["perms_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_RouteAndExecute(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(43);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  const RoutePlan plan = route_permutation(topo, pi);
  Network net(topo);
  for (auto _ : state) {
    net.load_permutation_traffic(pi);
    net.execute(plan.slots);
    benchmark::DoNotOptimize(net.all_delivered());
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count());
}

void register_tier_benches() {
  auto* route = benchmark::RegisterBenchmark("BM_RoutePermutation",
                                             BM_RoutePermutation);
  auto* engine = benchmark::RegisterBenchmark("BM_EngineRoutePermutation",
                                              BM_EngineRoutePermutation);
  auto* execute = benchmark::RegisterBenchmark("BM_RouteAndExecute",
                                               BM_RouteAndExecute);
  for (const GridPoint point : tier().grid) {
    route->Args({point.d, point.g});
    engine->Args({point.d, point.g});
    execute->Args({point.d, point.g});
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
