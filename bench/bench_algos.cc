// Experiment E9 — the extension operations (Sahni's fundamental ops)
// inherit the Theorem 2 budget: data sum and prefix sum cost exactly
// log2(n) * 2*ceil(d/g) slots on any POPS shape, and the results are
// verified against scalar references.
#include <algorithm>
#include <numeric>

#include "bench_common.h"
#include "algos/data_ops.h"
#include "algos/hypercube_sim.h"
#include "algos/matmul.h"
#include "algos/sorting.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"

namespace pops::bench {
namespace {

void print_tables() {
  std::cout << "=== E9: data operations on POPS (slots, verified) ===\n";
  Rng rng(9);
  Table table({"topology", "n", "op", "slots", "formula", "correct"});
  for (const auto& [d, g] :
       {std::pair{1, 16}, {4, 4}, {8, 4}, {16, 4}, {8, 8}, {32, 2}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();
    int dims = 0;
    while ((1 << dims) < n) ++dims;
    const int step = theorem2_slots(topo);

    std::vector<std::uint64_t> values(as_size(n));
    for (auto& v : values) v = rng.next_below(100);
    const std::uint64_t total =
        std::accumulate(values.begin(), values.end(), std::uint64_t{0});

    const CollectiveRun sum = data_sum(topo, values);
    bool sum_ok = true;
    for (const auto v : sum.values) sum_ok = sum_ok && v == total;
    table.add(topo.to_string(), n, "data_sum", sum.slots_used,
              str_cat(dims, "*", step, "=", dims * step),
              sum_ok ? "yes" : "NO");

    const CollectiveRun scan = prefix_sum(topo, values);
    bool scan_ok = true;
    std::uint64_t acc = 0;
    for (int i = 0; i < n; ++i) {
      acc += values[as_size(i)];
      scan_ok = scan_ok && scan.values[as_size(i)] == acc;
    }
    table.add(topo.to_string(), n, "prefix_sum", scan.slots_used,
              str_cat(dims, "*", step, "=", dims * step),
              scan_ok ? "yes" : "NO");

    const CollectiveRun adj = adjacent_sum(topo, values);
    bool adj_ok = true;
    for (int i = 0; i < n; ++i) {
      adj_ok = adj_ok && adj.values[as_size(i)] ==
                             values[as_size(i)] +
                                 values[as_size((i + 1) % n)];
    }
    table.add(topo.to_string(), n, "adjacent_sum", adj.slots_used,
              str_cat(step), adj_ok ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "Expected shape: slots == formula on every row; correctness\n"
               "columns all yes. The ops cost is purely the routed\n"
               "communication — the Theorem 2 budget per hypercube step.\n\n";

  std::cout << "=== E9b: composite kernels (bitonic sort, Cannon matmul) "
               "===\n";
  Table composite(
      {"topology", "kernel", "comm steps", "slots", "correct"});
  for (const auto& [d, g] : {std::pair{4, 4}, {8, 2}, {2, 8}, {8, 8}}) {
    const Topology topo(d, g);
    const int n = topo.processor_count();

    std::vector<std::uint64_t> values(as_size(n));
    for (auto& v : values) v = rng.next_below(1000);
    const CollectiveRun sorted = bitonic_sort(topo, values);
    composite.add(topo.to_string(), "bitonic_sort",
                  bitonic_phase_count(n), sorted.slots_used,
                  std::is_sorted(sorted.values.begin(),
                                 sorted.values.end())
                      ? "yes"
                      : "NO");

    const CollectiveRun oe = odd_even_transposition_sort(topo, values);
    composite.add(topo.to_string(), "odd_even_sort", n, oe.slots_used,
                  std::is_sorted(oe.values.begin(), oe.values.end())
                      ? "yes"
                      : "NO");

    int mesh = 1;
    while (mesh * mesh < n) ++mesh;
    if (mesh * mesh == n) {
      std::vector<std::uint64_t> a(as_size(n));
      std::vector<std::uint64_t> b(as_size(n));
      for (auto& v : a) v = rng.next_below(10);
      for (auto& v : b) v = rng.next_below(10);
      const MatmulRun mm = cannon_matmul(topo, mesh, a, b);
      composite.add(topo.to_string(), "cannon_matmul",
                    mm.permutations_routed, mm.slots_used,
                    mm.c == reference_matmul(mesh, a, b) ? "yes" : "NO");
    }
  }
  composite.print(std::cout);
  std::cout << "Expected shape: sort costs D*(D+1)/2 routed exchanges and\n"
               "matmul (2 + 2*(N-1)) routed permutations, each priced at\n"
               "the Theorem 2 budget of its shape.\n\n";
}

void BM_DataSum(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(54);
  std::vector<std::uint64_t> values(as_size(topo.processor_count()));
  for (auto& v : values) v = rng.next_below(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data_sum(topo, values));
  }
}
BENCHMARK(BM_DataSum)->Args({4, 4})->Args({8, 8});

void BM_HypercubeExchange(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  const HypercubeSimulator sim(topo);
  Rng rng(55);
  std::vector<std::uint64_t> values(as_size(topo.processor_count()));
  for (auto& v : values) v = rng.next_below(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.exchange(values, 0));
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count());
}
BENCHMARK(BM_HypercubeExchange)->Args({8, 8})->Args({16, 16});

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables)
