// Named benchmark size tiers — the one registry every bench binary
// sizes itself from.
//
// A tier maps a name (`fresh`/`small`/`medium`/`large`) to the full
// set of size knobs the wired benches consume: the (d, g) grid for the
// routing/simulator sweeps, the edge-coloring (n, Delta) grid, the
// h-relation h values, the traffic-server serve grid and soak length,
// and the sampling trial counts. Benches never hardcode sizes; they
// read `tier()` (set once at startup from the POPS_BENCH_TIER env var
// or the --tier= flag, both handled in bench_common.h) so the same
// binaries scale from toy smoke runs to production-shaped sweeps, and
// `BENCH_<tier>.json` snapshots are comparable run over run because a
// tier name pins the workload exactly.
//
// Tier intents:
//   fresh  — toy sizes; the default, so ctest/smoke and the hermetic
//            shim CI job stay fast. Everything routes in-process in
//            well under a second.
//   small  — the PR regression gate (scripts/bench_diff.py against the
//            committed BENCH_small.json); sized like the historical
//            hardcoded bench grids so the trajectory is continuous.
//   medium — the weekly drift-watch leg; multi-thousand-processor
//            topologies and a production-shaped soak.
//   large  — manual-dispatch only; the biggest shapes the simulator
//            holds comfortably in memory (n = 16K processors).
//
// This header is benchmark-library-free on purpose: tests
// (tests/test_tiers.cc) include it to assert every tier is valid for
// Topology without pulling in google-benchmark or the shim.
#pragma once

#include <string>
#include <vector>

#include "support/check.h"

namespace pops::bench {

/// One POPS(d, g) topology point of a tier's sweep.
struct GridPoint {
  int d;
  int g;
};

/// One (n, Delta) point of the edge-coloring ablation sweep.
struct ColoringPoint {
  int n;
  int degree;
};

/// One traffic-server operating point: topology plus the window
/// degree cap the server closes h-relation windows at.
struct ServePoint {
  int d;
  int g;
  int window_degree;
};

struct TierSpec {
  std::string name;
  std::string description;

  /// Main (d, g) sweep: routing engine, direct router, simulator
  /// execute, lower bounds, h-relation. Ordered small to large.
  std::vector<GridPoint> grid;

  /// Values crossed d x g for the exhaustive Theorem 2 table (E1).
  std::vector<int> table_axis;

  /// Edge-coloring ablation (n, Delta) sweep (E4).
  std::vector<ColoringPoint> coloring_grid;

  /// h values for h-relation routing (E10).
  std::vector<int> h_values;

  /// Traffic-server operating points (E11 and the BM_Serve* benches).
  std::vector<ServePoint> serve_grid;

  /// Windows per E11a table row.
  int serve_table_windows;

  /// Windows for the E11b steady-state soak (still overridable with
  /// POPS_TRAFFIC_SOAK_WINDOWS, which CI's sanitizer legs shorten).
  long long soak_windows;

  /// TrafficServer per-window demand cap.
  int max_window_demands;

  /// Trial count for sampling tables (e.g. the one-slot routable
  /// fraction, E7b).
  int random_trials;

  /// Worker counts for the BatchRouter throughput axis
  /// (BM_BatchRoute); each value registers one benchmark variant.
  std::vector<int> batch_threads;

  /// Permutations per route_batch call in BM_BatchRoute.
  int batch_perms;
};

inline const std::vector<TierSpec>& all_tiers() {
  static const std::vector<TierSpec> tiers = {
      {
          "fresh",
          "toy sizes, sub-second; default for ctest/CI smoke",
          /*grid=*/{{1, 4}, {2, 2}, {4, 4}, {8, 4}},
          /*table_axis=*/{1, 2, 4},
          /*coloring_grid=*/{{16, 2}, {32, 4}},
          /*h_values=*/{1, 2},
          /*serve_grid=*/{{2, 2, 2}, {4, 4, 4}},
          /*serve_table_windows=*/60,
          /*soak_windows=*/400,
          /*max_window_demands=*/64,
          /*random_trials=*/50,
          /*batch_threads=*/{1, 2},
          /*batch_perms=*/64,
      },
      {
          "small",
          "PR regression gate; matches the historical bench grids",
          /*grid=*/{{4, 4}, {16, 16}, {64, 8}, {8, 64}, {32, 32}},
          /*table_axis=*/{1, 2, 4, 8, 16, 32},
          /*coloring_grid=*/{{64, 8}, {256, 16}},
          /*h_values=*/{2, 4, 8},
          /*serve_grid=*/{{4, 4, 4}, {8, 4, 4}, {16, 8, 8}},
          /*serve_table_windows=*/500,
          /*soak_windows=*/3000,
          /*max_window_demands=*/256,
          /*random_trials=*/500,
          /*batch_threads=*/{1, 2, 4, 8},
          /*batch_perms=*/256,
      },
      {
          "medium",
          "weekly drift watch; thousands of processors",
          /*grid=*/{{16, 16}, {32, 32}, {64, 64}, {128, 32}, {32, 128}},
          /*table_axis=*/{1, 4, 16, 64},
          /*coloring_grid=*/{{256, 16}, {1024, 32}},
          /*h_values=*/{4, 8, 16},
          /*serve_grid=*/{{16, 8, 8}, {32, 16, 8}, {64, 16, 16}},
          /*serve_table_windows=*/1000,
          /*soak_windows=*/12000,
          /*max_window_demands=*/512,
          /*random_trials=*/1000,
          /*batch_threads=*/{1, 2, 4, 8, 16},
          /*batch_perms=*/512,
      },
      {
          "large",
          "manual dispatch; production-scale shapes (n = 16K)",
          /*grid=*/{{32, 32}, {64, 64}, {128, 128}, {256, 64}, {64, 256}},
          /*table_axis=*/{1, 8, 32, 128},
          /*coloring_grid=*/{{1024, 32}, {4096, 64}},
          /*h_values=*/{8, 16, 32},
          /*serve_grid=*/{{64, 16, 16}, {128, 32, 16}, {128, 64, 32}},
          /*serve_table_windows=*/2000,
          /*soak_windows=*/50000,
          /*max_window_demands=*/1024,
          /*random_trials=*/2000,
          /*batch_threads=*/{1, 4, 8, 16, 32},
          /*batch_perms=*/1024,
      },
  };
  return tiers;
}

inline const TierSpec& tier_by_name(const std::string& name) {
  for (const TierSpec& spec : all_tiers()) {
    if (spec.name == name) return spec;
  }
  POPS_CHECK(false, "unknown bench tier '" + name +
                        "' (known tiers: fresh, small, medium, large)");
  return all_tiers().front();  // unreachable
}

namespace internal {
inline const TierSpec*& current_tier_slot() {
  static const TierSpec* current = &tier_by_name("fresh");
  return current;
}
}  // namespace internal

/// The active tier. Defaults to `fresh` until set_tier() runs, so a
/// bench binary invoked with no flag and no env var stays toy-sized.
inline const TierSpec& tier() { return *internal::current_tier_slot(); }

/// Selects the active tier; aborts (POPS_CHECK) on an unknown name so
/// a typo in POPS_BENCH_TIER can never silently run the wrong sizes.
inline void set_tier(const std::string& name) {
  internal::current_tier_slot() = &tier_by_name(name);
}

}  // namespace pops::bench
