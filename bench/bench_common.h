// Shared helpers for the experiment harness (bench/ binaries).
//
// Every binary prints its experiment table (the paper-shaped artifact)
// first, then runs its google-benchmark timings. All schedules that feed a
// table are executed on the strict simulator and verified — a table row is
// only printed for a verified run.
//
// Sizes come from the named tier registry (bench/tiers.h). The tier is
// selected exactly once, before anything sized runs, by init_tier():
// the --tier= flag wins, then the POPS_BENCH_TIER env var, then the
// `fresh` default — one entry point for every bench binary, so
// `POPS_BENCH_TIER=small ./bench_x` and `./bench_x --tier=small` are
// interchangeable and scripts/bench_tier.sh can drive the whole wired
// manifest at any tier.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/tiers.h"
#include "routing/router.h"
#include "routing/verify.h"
#include "support/check.h"

namespace pops::bench {

/// Routes, executes and verifies; returns the slot count. Aborts the
/// binary on any verification failure (a bench must never report numbers
/// from a broken schedule). Defaults to the Theorem 2 construction —
/// the experiment tables compare measured slots against the paper
/// formula, so "best" would be the wrong default here.
inline int verified_slot_count(
    const Topology& topo, const Permutation& pi,
    const RouteOptions& options = {RouteStrategy::kTheorem2}) {
  const RouteResult result = route(topo, pi, options);
  const VerificationResult vr = verify_schedule(topo, pi, result.schedule);
  POPS_CHECK(vr.ok, "benchmark schedule failed verification: " + vr.failure);
  return result.slot_count;
}

/// Resolves the active tier from `--tier=<name>` (stripped from argv so
/// benchmark::Initialize never sees it) or POPS_BENCH_TIER, defaulting
/// to `fresh`. Aborts on an unknown tier name. Prints the selection so
/// every table artifact records which tier produced it.
inline void init_tier(int* argc, char** argv) {
  const char* flag = nullptr;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--tier=", 7) == 0) {
      flag = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  const char* env = std::getenv("POPS_BENCH_TIER");
  if (flag != nullptr && *flag != '\0') {
    set_tier(flag);
  } else if (env != nullptr && *env != '\0') {
    set_tier(env);
  }
  std::cout << "bench tier: " << tier().name << " (" << tier().description
            << ")\n\n";
}

/// Standard main body: resolve the tier, print the table, register the
/// tier-sized benchmarks, then run them. `register_tier_benches` is
/// each binary's benchmark::RegisterBenchmark() hook — registration is
/// dynamic because the Args grids depend on the tier chosen at
/// runtime, which the static BENCHMARK() macro cannot express.
#define POPSNET_BENCH_MAIN(print_tables, register_tier_benches)  \
  int main(int argc, char** argv) {                              \
    ::pops::bench::init_tier(&argc, argv);                       \
    print_tables();                                              \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    register_tier_benches();                                     \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    return 0;                                                    \
  }

}  // namespace pops::bench
