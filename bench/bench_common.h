// Shared helpers for the experiment harness (bench/ binaries).
//
// Every binary prints its experiment table (the paper-shaped artifact)
// first, then runs its google-benchmark timings. All schedules that feed a
// table are executed on the strict simulator and verified — a table row is
// only printed for a verified run.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "routing/router.h"
#include "routing/verify.h"
#include "support/check.h"

namespace pops::bench {

/// Routes, executes and verifies; returns the slot count. Aborts the
/// binary on any verification failure (a bench must never report numbers
/// from a broken schedule).
inline int verified_slot_count(const Topology& topo, const Permutation& pi,
                               const RouterOptions& options = {}) {
  const RoutePlan plan = route_permutation(topo, pi, options);
  const VerificationResult vr = verify_schedule(topo, pi, plan.slots);
  POPS_CHECK(vr.ok, "benchmark schedule failed verification: " + vr.failure);
  return plan.slot_count();
}

/// Standard main body: print the table, then run benchmarks.
#define POPSNET_BENCH_MAIN(print_tables)                       \
  int main(int argc, char** argv) {                            \
    print_tables();                                            \
    ::benchmark::Initialize(&argc, argv);                      \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                                \
    }                                                          \
    ::benchmark::RunSpecifiedBenchmarks();                     \
    ::benchmark::Shutdown();                                   \
    return 0;                                                  \
  }

}  // namespace pops::bench
