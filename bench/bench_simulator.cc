// Experiment E8 — substrate engineering: throughput of the strict
// simulator itself (packets moved per second under full validation),
// plus the traffic-pattern scenario sweep: every generator in
// pops/patterns.h routed at the Theorem 2 bound and executed on the
// simulator. All sizes come from the active tier's (d, g) grid.
#include "bench_common.h"
#include "perm/families.h"
#include "pops/network.h"
#include "pops/patterns.h"
#include "routing/engine.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"
#include "support/timer.h"

namespace pops::bench {
namespace {

void print_throughput_table() {
  std::cout << "=== E8: simulator throughput (validated packet-slots/s) "
               "===\n";
  Table table({"topology", "n", "slots/schedule", "Mpacket-slots/s",
               "coupler util %"});
  Rng rng(8);
  for (const GridPoint point : tier().grid) {
    const Topology topo(point.d, point.g);
    const int n = topo.processor_count();
    const Permutation pi = Permutation::random(n, rng);
    RoutingEngine engine(topo);
    const FlatSchedule& plan = engine.route_permutation(pi);
    Network net(topo);

    const int reps = 20;
    Timer timer;
    for (int rep = 0; rep < reps; ++rep) {
      net.load_permutation_traffic(pi);
      net.execute(plan);
      POPS_CHECK(net.all_delivered(), "benchmark schedule broke");
    }
    const double seconds = timer.seconds();
    const double packet_slots =
        static_cast<double>(reps) * static_cast<double>(n) *
        static_cast<double>(plan.slot_count());
    table.add(topo.to_string(), n, plan.slot_count(),
              format_double(packet_slots / seconds / 1e6, 2),
              format_double(
                  net.stats().average_coupler_utilization() * 100, 1));
  }
  table.print(std::cout);
  std::cout << "Expected shape: throughput grows with n until validation\n"
               "overhead (per-coupler bookkeeping) dominates; utilization\n"
               "is ~100% for d >= g (all g^2 couplers busy every slot).\n\n";
}

void print_pattern_table() {
  std::cout << "=== E8b: traffic-pattern scenarios (engine-routed, "
               "executed, verified) ===\n";
  Table table({"topology", "pattern", "slots", "formula", "delivered"});
  for (const GridPoint point : tier().grid) {
    const Topology topo(point.d, point.g);
    RoutingEngine engine(topo);
    Network net(topo);
    for (const auto pattern : kAllTrafficPatterns) {
      const Permutation pi = make_pattern(topo, pattern, 8);
      const FlatSchedule& plan = engine.route_permutation(pi);
      net.reset();
      net.load_permutation_traffic(pi);
      POPS_CHECK(net.execute(plan),
                 "pattern schedule rejected: " + net.failure());
      POPS_CHECK(net.all_delivered(), "pattern schedule broke");
      table.add(topo.to_string(), to_string(pattern), plan.slot_count(),
                theorem2_slots(topo), "yes");
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: every pattern routes in exactly the "
               "formula slots\n(the construction is oblivious — the "
               "pattern never matters).\n\n";
}

void print_tables() {
  print_throughput_table();
  print_pattern_table();
}

// Deliberately benchmarks the deprecated nested execute path: the
// BM_ExecuteSchedule-vs-BM_ExecuteFlatSchedule pair is the measured
// cost of the nested layout, which is why the flat layout is the
// canonical one.
void BM_ExecuteSchedule(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(52);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  RoutingEngine engine(topo);
  const std::vector<SlotPlan> slots =
      engine.route_permutation(pi).to_slot_plans();
  Network net(topo);
  for (auto _ : state) {
    net.load_permutation_traffic(pi);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    net.execute(slots);
#pragma GCC diagnostic pop
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count() *
                          static_cast<long long>(slots.size()));
}

void BM_ExecuteFlatSchedule(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(52);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  RoutingEngine engine(topo);
  const FlatSchedule& plan = engine.route_permutation(pi);
  Network net(topo);
  for (auto _ : state) {
    net.load_permutation_traffic(pi);
    net.execute(plan);
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count() *
                          plan.slot_count());
}

void BM_Broadcast(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  const SlotPlan plan = one_to_all(topo, 0);
  Network net(topo);
  for (auto _ : state) {
    net.reset();
    net.load_packet(Packet{-1, 0, 0, 1, 0});
    net.execute_slot(plan);
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count());
}

void BM_LoadTraffic(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(53);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  Network net(topo);
  for (auto _ : state) {
    net.load_permutation_traffic(pi);
  }
  state.SetItemsProcessed(state.iterations() * topo.processor_count());
}

void register_tier_benches() {
  auto* nested = benchmark::RegisterBenchmark("BM_ExecuteSchedule",
                                              BM_ExecuteSchedule);
  auto* flat = benchmark::RegisterBenchmark("BM_ExecuteFlatSchedule",
                                            BM_ExecuteFlatSchedule);
  auto* broadcast =
      benchmark::RegisterBenchmark("BM_Broadcast", BM_Broadcast);
  for (const GridPoint point : tier().grid) {
    nested->Args({point.d, point.g});
    flat->Args({point.d, point.g});
    broadcast->Args({point.d, point.g});
  }
  // Traffic loading is pure memory writes; one point (the tier's
  // largest) captures it.
  const GridPoint largest = tier().grid.back();
  benchmark::RegisterBenchmark("BM_LoadTraffic", BM_LoadTraffic)
      ->Args({largest.d, largest.g});
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
