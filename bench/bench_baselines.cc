// Experiment E7 — baseline crossover: Theorem 2 vs. direct routing.
//
// Direct routing needs max-demand slots: ~d/g + O(sqrt) for random
// permutations (balls into bins) but exactly d for adversarial
// (group-block) traffic. Theorem 2 charges a flat 2*ceil(d/g). The table
// sweeps the tier's (d, g) grid and shows who wins where; the crossover
// is the point of the experiment:
//   * random traffic, d >> g: direct wins (max demand ~ d/g < 2*ceil(d/g));
//   * random traffic, d <= g: direct usually wins or ties at ~2 slots;
//   * adversarial traffic: direct loses by up to a factor g/2.
#include <numeric>

#include "bench_common.h"
#include "perm/families.h"
#include "routing/engine.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"

namespace pops::bench {
namespace {

int direct_verified(RoutingEngine& engine, const Permutation& pi) {
  const FlatSchedule& plan = engine.route(pi, {RouteStrategy::kDirect});
  const VerificationResult vr =
      verify_schedule(engine.topology(), pi, plan);
  POPS_CHECK(vr.ok, "direct schedule failed verification: " + vr.failure);
  return plan.slot_count();
}

void print_tables() {
  Rng rng(7);
  std::cout << "=== E7: Theorem 2 vs. direct routing (slot counts) ===\n";
  Table table({"topology", "thm2", "direct random (avg of 5)",
               "direct reversal", "direct group-rot", "winner random",
               "winner adversarial"});
  for (const GridPoint point : tier().grid) {
    const Topology topo(point.d, point.g);
    const int n = topo.processor_count();
    const int thm2 = theorem2_slots(topo);
    RoutingEngine engine(topo);

    double direct_random = 0;
    for (int t = 0; t < 5; ++t) {
      direct_random +=
          direct_verified(engine, Permutation::random(n, rng));
    }
    direct_random /= 5;

    const int direct_reversal =
        direct_verified(engine, vector_reversal(n));
    const int direct_rot = direct_verified(
        engine, group_rotation(point.d, point.g, point.g > 1 ? 1 : 0));

    table.add(topo.to_string(), thm2, format_double(direct_random, 1),
              direct_reversal, direct_rot,
              direct_random < thm2 ? "direct"
                                   : (direct_random > thm2 ? "thm2" : "tie"),
              direct_reversal > thm2 ? "thm2" : "direct");
  }
  table.print(std::cout);
  std::cout << "Expected shape: direct wins on random traffic (max demand\n"
               "is close to d/g, half of Theorem 2's charge) and loses on\n"
               "group-block traffic, where it degrades to d slots while\n"
               "Theorem 2 stays flat — the worst-case guarantee is the\n"
               "paper's point.\n\n";

  std::cout << "=== E7c: portfolio router strategy choices ===\n";
  {
    Table portfolio_table({"topology", "traffic", "strategy", "slots",
                           "thm2", "direct"});
    // Smallest, middle, and largest tier point: enough to show the
    // strategy flip without repeating the whole sweep.
    const std::vector<GridPoint>& grid = tier().grid;
    for (const GridPoint point :
         {grid.front(), grid[grid.size() / 2], grid.back()}) {
      const Topology topo(point.d, point.g);
      const int n = topo.processor_count();
      RoutingEngine engine(topo);
      struct Case {
        const char* name;
        Permutation pi;
      };
      const Case cases[] = {
          {"random", Permutation::random(n, rng)},
          {"reversal", vector_reversal(n)},
          {"group-rot",
           group_rotation(point.d, point.g, point.g > 1 ? 1 : 0)},
      };
      for (const auto& c : cases) {
        const FlatSchedule& plan =
            engine.route(c.pi, {RouteStrategy::kBest});
        const VerificationResult vr = verify_schedule(topo, c.pi, plan);
        POPS_CHECK(vr.ok, "portfolio schedule failed: " + vr.failure);
        portfolio_table.add(topo.to_string(), c.name,
                            to_string(engine.last_strategy()),
                            plan.slot_count(),
                            engine.theorem2_slot_count(),
                            engine.direct_slot_count());
      }
    }
    portfolio_table.print(std::cout);
    std::cout << "Expected shape: the portfolio never exceeds the better "
                 "of its candidates;\nstrategy flips from direct to "
                 "theorem2 exactly on the adversarial rows.\n\n";
  }

  std::cout << "=== E7b: one-slot routable fraction of random "
               "permutations ===\n";
  const int trials = tier().random_trials;
  Table frac({"topology", str_cat("routable/", trials)});
  // The one-slot class only exists at tiny d; the shapes stay fixed and
  // the tier scales how hard we sample them.
  for (const auto& [d, g] : {std::pair{2, 4}, {2, 8}, {3, 8}, {4, 8},
                             {2, 16}, {4, 16}}) {
    const Topology topo(d, g);
    RoutingEngine engine(topo);
    int count = 0;
    for (int t = 0; t < trials; ++t) {
      const Permutation pi =
          Permutation::random(topo.processor_count(), rng);
      engine.route_direct(pi);
      if (engine.direct_max_demand() <= 1) ++count;
    }
    frac.add(topo.to_string(), count);
  }
  frac.print(std::cout);
  std::cout << "Expected shape: the fraction collapses as d grows — the\n"
               "paper's \"only a very restricted number of permutations\"\n"
               "(Gravenstreter & Melhem's single-slot class).\n\n";
}

void BM_DirectRoute(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(51);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  const RouteOptions options{RouteStrategy::kDirect};
  // One-shot cost on purpose (fresh scratch per call, like the
  // historical free function) — the warm-engine number is
  // BM_EngineRoutePermutation's territory.
  for (auto _ : state) {
    benchmark::DoNotOptimize(route(topo, pi, options));
  }
  state.SetItemsProcessed(state.iterations());  // permutations routed
  state.counters["perms_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void register_tier_benches() {
  auto* direct =
      benchmark::RegisterBenchmark("BM_DirectRoute", BM_DirectRoute);
  for (const GridPoint point : tier().grid) {
    direct->Args({point.d, point.g});
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
