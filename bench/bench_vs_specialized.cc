// Experiment E6 — "unifies and generalizes the known results".
//
// The permutations that prior work (Sahni 2000a/b, Gravenstreter & Melhem)
// routed with per-family algorithms, all routed here by the single general
// router. Two checks:
//   (a) the general router meets the same 2*ceil(d/g) slot budget the
//       specialized results promise, on every family;
//   (b) for the group-block families, the O(n) closed-form router produces
//       equally valid schedules, orders of magnitude faster to construct.
#include "bench_common.h"
#include "perm/bpc.h"
#include "perm/families.h"
#include "routing/specialized.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"
#include "support/timer.h"

namespace pops::bench {
namespace {

void print_tables() {
  std::cout << "=== E6: general router vs. prior-art families ===\n";
  {
    Table table({"family", "topology", "slots (general)", "formula",
                 "matches"});
    for (const auto& [d, g] : {std::pair{8, 8}, {16, 4}, {4, 16}}) {
      const Topology topo(d, g);
      const int n = topo.processor_count();
      int k = 0;
      while ((1 << k) < n) ++k;

      struct Case {
        std::string name;
        Permutation pi;
      };
      std::vector<Case> cases;
      cases.push_back({"hypercube bit 0", hypercube_neighbor(n, 0)});
      cases.push_back({"hypercube bit k-1", hypercube_neighbor(n, k - 1)});
      cases.push_back({"vector reversal", vector_reversal(n)});
      cases.push_back({"bit reversal (BPC)",
                       Bpc::bit_reversal(k).to_permutation()});
      cases.push_back({"perfect shuffle (BPC)",
                       Bpc::perfect_shuffle(k).to_permutation()});
      cases.push_back({"transpose (BPC)",
                       Bpc::matrix_transpose(k / 2, k - k / 2)
                           .to_permutation()});
      const int mesh = 1 << (k / 2);
      if (mesh * mesh == n) {
        cases.push_back({"torus shift +i", torus_shift(mesh, 0, +1)});
        cases.push_back({"torus shift -j", torus_shift(mesh, 1, -1)});
      }
      for (const auto& c : cases) {
        const int measured = verified_slot_count(topo, c.pi);
        table.add(c.name, topo.to_string(), measured, theorem2_slots(topo),
                  measured == theorem2_slots(topo) ? "yes" : "NO");
      }
    }
    table.print(std::cout);
  }

  std::cout << "\n=== E6b: construction cost, general vs. closed-form "
               "(group-block) ===\n";
  {
    Table table({"topology", "general us", "closed-form us", "speedup"});
    Rng rng(6);
    for (const auto& [d, g] :
         {std::pair{16, 16}, {64, 16}, {16, 64}, {128, 32}}) {
      const Topology topo(d, g);
      const Permutation pi = random_group_block(d, g, rng, true);
      double general_s = 1e99;
      double special_s = 1e99;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t1;
        benchmark::DoNotOptimize(route_permutation(topo, pi));
        general_s = std::min(general_s, t1.seconds());
        Timer t2;
        benchmark::DoNotOptimize(route_group_block(topo, pi));
        special_s = std::min(special_s, t2.seconds());
      }
      table.add(topo.to_string(), format_double(general_s * 1e6, 1),
                format_double(special_s * 1e6, 1),
                format_double(general_s / special_s, 1));
    }
    table.print(std::cout);
  }
  std::cout << "Expected shape: the 'matches' column is all yes — one\n"
               "algorithm covers every family the literature handled case\n"
               "by case; the closed-form router wins construction time on\n"
               "its class without changing slot counts.\n\n";
}

void BM_GeneralOnGroupBlock(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(49);
  const Permutation pi = random_group_block(topo.d(), topo.g(), rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_permutation(topo, pi));
  }
}
BENCHMARK(BM_GeneralOnGroupBlock)->Args({32, 32})->Args({64, 16});

void BM_SpecializedOnGroupBlock(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  Rng rng(50);
  const Permutation pi = random_group_block(topo.d(), topo.g(), rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_group_block(topo, pi));
  }
}
BENCHMARK(BM_SpecializedOnGroupBlock)->Args({32, 32})->Args({64, 16});

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables)
