// Experiment E10 — h-relation routing (extension).
//
// The compositional consequence of Theorem 2: an h-relation decomposes by
// König edge coloring into h partial permutations (the decomposition uses
// the same coloring substrate as Theorem 1), so it routes in
// h * 2*ceil(d/g) slots (h when d = 1). The table verifies the budget and
// delivery across the tier's (d, g) grid and h values.
#include "bench_common.h"
#include "routing/h_relation.h"
#include "support/prng.h"
#include "support/table.h"

namespace pops::bench {
namespace {

std::vector<Request> random_relation(const Topology& topo, int h, Rng& rng) {
  std::vector<Request> requests;
  for (int k = 0; k < h; ++k) {
    const Permutation pi = Permutation::random(topo.processor_count(), rng);
    for (int i = 0; i < pi.size(); ++i) {
      requests.push_back(Request{i, pi(i)});
    }
  }
  return requests;
}

void print_tables() {
  std::cout << "=== E10: h-relation routing (slots, verified) ===\n";
  Rng rng(10);
  Table table({"topology", "h", "packets", "phases", "slots", "budget",
               "verified"});
  for (const GridPoint point : tier().grid) {
    const Topology topo(point.d, point.g);
    for (const int h : tier().h_values) {
      const auto requests = random_relation(topo, h, rng);
      const HRelationPlan plan = route_h_relation(topo, requests);
      const std::string failure = verify_h_relation(topo, requests, plan);
      POPS_CHECK(failure.empty(), "h-relation failed: " + failure);
      table.add(topo.to_string(), h, requests.size(),
                as_int(plan.phases.size()), plan.total_slots(),
                plan.h * theorem2_slots(topo), "yes");
    }
  }
  table.print(std::cout);
  std::cout << "Expected shape: slots == budget == h * theorem2_slots on\n"
               "every row (the union of h random permutations has max\n"
               "degree exactly h with overwhelming probability).\n\n";
}

void BM_RouteHRelation(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  const int h = static_cast<int>(state.range(2));
  Rng rng(56);
  const auto requests = random_relation(topo, h, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_h_relation(topo, requests));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(requests.size()));
  state.counters["demands_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(requests.size()),
      benchmark::Counter::kIsRate);
}

void register_tier_benches() {
  auto* route = benchmark::RegisterBenchmark("BM_RouteHRelation",
                                             BM_RouteHRelation);
  // The full grid at the middle h, plus the h sweep on the middle
  // topology: h and (d, g) scale independently, so the cross product
  // would only repeat what the two slices already show.
  const std::vector<GridPoint>& grid = tier().grid;
  const std::vector<int>& h_values = tier().h_values;
  const int mid_h = h_values[h_values.size() / 2];
  for (const GridPoint point : grid) {
    route->Args({point.d, point.g, mid_h});
  }
  const GridPoint mid = grid[grid.size() / 2];
  for (const int h : h_values) {
    if (h != mid_h) route->Args({mid.d, mid.g, h});
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
