// Experiment E3 — Remark 1: the cost of computing the routing.
//
// Paper claim: the bottleneck is 1-factorizing a regular bipartite
// multigraph; O(g^3) or O(g^2 log g) when d <= g, O(dn) or O(n log d)
// when d > g, depending on the edge-coloring algorithm. We time the fair
// distribution step for all three backends on both sweeps and print the
// growth ratios (time(2x) / time(x)); the backends should separate by
// their asymptotic slopes.
#include <map>

#include "bench_common.h"
#include "routing/fair_distribution.h"
#include "routing/list_system.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"
#include "support/timer.h"

namespace pops::bench {
namespace {

double time_fair(const Topology& topo, ColoringAlgorithm algorithm,
                 Rng& rng) {
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  const ListSystem ls = list_system_from_permutation(topo, pi);
  // Median of 3 runs.
  double best = 1e99;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    benchmark::DoNotOptimize(fair_distribution(ls, algorithm));
    best = std::min(best, timer.seconds());
  }
  return best;
}

void print_tables() {
  Rng rng(3);
  auto row = [&](Table& table, int key, const Topology& topo) {
    std::vector<std::string> cells{std::to_string(key)};
    for (const auto algorithm : kAllColoringAlgorithms) {
      cells.push_back(
          format_double(time_fair(topo, algorithm, rng) * 1e6, 1));
    }
    table.add_row(std::move(cells));
  };
  std::cout << "=== E3: fair-distribution cost (Remark 1), d == g sweep ===\n";
  {
    Table table({"g (d=g)", "alternating-path us", "euler-split us",
                 "matching-peel us", "circuit-peel us"});
    for (const int g : {8, 16, 32, 64, 128}) {
      row(table, g, Topology(g, g));
    }
    table.print(std::cout);
  }
  std::cout << "\n=== E3b: d > g sweep (g = 8 fixed) ===\n";
  {
    Table table({"d (g=8)", "alternating-path us", "euler-split us",
                 "matching-peel us", "circuit-peel us"});
    for (const int d : {16, 32, 64, 128, 256}) {
      row(table, d, Topology(d, 8));
    }
    table.print(std::cout);
  }
  std::cout << "Expected shape: matching-peel grows fastest (extra sqrt(n)\n"
               "factor); euler-split and circuit-peel track the sub-O(Dm)\n"
               "bounds of Remark 1; alternating-path sits in between on\n"
               "these dense instances.\n\n";
}

void BM_FairDistribution(benchmark::State& state) {
  const Topology topo(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  const auto algorithm = static_cast<ColoringAlgorithm>(state.range(2));
  Rng rng(44);
  const Permutation pi = Permutation::random(topo.processor_count(), rng);
  const ListSystem ls = list_system_from_permutation(topo, pi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fair_distribution(ls, algorithm));
  }
  state.SetLabel(to_string(algorithm));
}
BENCHMARK(BM_FairDistribution)
    ->Args({32, 32, 0})
    ->Args({32, 32, 1})
    ->Args({32, 32, 2})
    ->Args({128, 128, 0})
    ->Args({128, 128, 1})
    ->Args({128, 128, 2})
    ->Args({128, 8, 0})
    ->Args({128, 8, 1})
    ->Args({128, 8, 2});

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables)
