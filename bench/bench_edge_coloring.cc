// Experiment E4 — ablation of the 1-factorization bottleneck itself.
//
// Times the edge-coloring backends on random Delta-regular bipartite
// multigraphs over the tier's (n, Delta) sweep, reporting ns/edge. This
// isolates the Remark 1 cost from the rest of the routing pipeline.
#include "bench_common.h"
#include "graph/edge_coloring.h"
#include "graph/euler_split.h"
#include "graph/hopcroft_karp.h"
#include "graph/random.h"
#include "graph/validation.h"
#include "support/format.h"
#include "support/prng.h"
#include "support/table.h"
#include "support/timer.h"

namespace pops::bench {
namespace {

BipartiteMultigraph random_regular(int n, int degree, Rng& rng) {
  return random_regular_multigraph(n, degree, rng);
}

double ns_per_edge(const BipartiteMultigraph& g,
                   ColoringAlgorithm algorithm) {
  // Warm reusable colorer: rep 0 sizes the flat scratch, later reps
  // measure the allocation-free steady state the engine actually runs.
  EdgeColorer colorer;
  EdgeColoring coloring;
  double best = 1e99;
  for (int rep = 0; rep < 4; ++rep) {
    Timer timer;
    colorer.color(g, algorithm, coloring);
    if (rep > 0) best = std::min(best, timer.nanos());
    POPS_CHECK(is_valid_edge_coloring(g, coloring),
               "invalid coloring in benchmark");
  }
  return best / static_cast<double>(g.edge_count());
}

void print_tables() {
  Rng rng(4);
  std::cout << "=== E4: edge coloring, ns/edge on Delta-regular graphs ===\n";
  Table table({"n", "Delta", "edges", "alternating-path", "euler-split",
               "matching-peel", "circuit-peel"});
  for (const ColoringPoint point : tier().coloring_grid) {
    const BipartiteMultigraph g =
        random_regular(point.n, point.degree, rng);
    std::vector<std::string> cells{std::to_string(point.n),
                                   std::to_string(point.degree),
                                   std::to_string(g.edge_count())};
    for (const auto algorithm : kAllColoringAlgorithms) {
      cells.push_back(format_double(ns_per_edge(g, algorithm), 0));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::cout << "Expected shape: per-edge cost of euler-split grows ~log "
               "Delta;\nmatching-peel grows ~Delta*sqrt(n); "
               "alternating-path grows with n\n(path lengths) but has the "
               "smallest constants on small instances.\n\n";
}

void BM_EdgeColoring(benchmark::State& state) {
  Rng rng(45);
  const BipartiteMultigraph g = random_regular(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng);
  const auto algorithm = static_cast<ColoringAlgorithm>(state.range(2));
  // Warm reusable colorer, as held by a RoutingEngine: the loop times
  // the zero-steady-state-allocation path of each backend.
  EdgeColorer colorer;
  EdgeColoring coloring;
  colorer.color(g, algorithm, coloring);
  for (auto _ : state) {
    colorer.color(g, algorithm, coloring);
    benchmark::DoNotOptimize(coloring.color.data());
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * g.edge_count()),
      benchmark::Counter::kIsRate);
  state.SetLabel(to_string(algorithm));
}

void BM_EulerSplitOnly(benchmark::State& state) {
  Rng rng(46);
  const BipartiteMultigraph g = random_regular(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(euler_split(g));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}

void BM_PerfectMatching(benchmark::State& state) {
  Rng rng(47);
  const BipartiteMultigraph g = random_regular(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
      rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximum_matching(g));
  }
  state.SetItemsProcessed(state.iterations());  // matchings found
}

void register_tier_benches() {
  auto* coloring =
      benchmark::RegisterBenchmark("BM_EdgeColoring", BM_EdgeColoring);
  auto* euler = benchmark::RegisterBenchmark("BM_EulerSplitOnly",
                                             BM_EulerSplitOnly);
  auto* matching = benchmark::RegisterBenchmark("BM_PerfectMatching",
                                                BM_PerfectMatching);
  for (const ColoringPoint point : tier().coloring_grid) {
    for (const auto algorithm : kAllColoringAlgorithms) {
      coloring->Args(
          {point.n, point.degree, static_cast<int>(algorithm)});
    }
    euler->Args({point.n, point.degree});
    matching->Args({point.n, point.degree});
  }
}

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables,
                   pops::bench::register_tier_benches)
