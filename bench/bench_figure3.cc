// Experiment E2 — reproduction of Figure 3.
//
// The paper's only worked example: POPS(3,3), packets drawn with their
// destinations "xy" (x = destination group, y = destination processor),
// and on the right the intermediate destinations chosen by the fair
// distribution. We print both sides: the initial layout and the
// intermediate assignment our Theorem 1 implementation computes, then
// execute the two slots.
#include "bench_common.h"
#include "pops/network.h"
#include "routing/fair_distribution.h"
#include "routing/list_system.h"
#include "support/format.h"
#include "support/table.h"

namespace pops::bench {
namespace {

void print_tables() {
  std::cout << "=== E2: Figure 3 — fair distribution on POPS(3,3) ===\n";
  const Topology topo(3, 3);
  const Permutation pi({5, 1, 7, 2, 0, 6, 3, 8, 4});
  std::cout << "Permutation: processor i -> " << "[5 1 7 2 0 6 3 8 4][i]"
            << "  (cycles " << pi.to_string() << ")\n\n";

  const RoutePlan plan = route_permutation(topo, pi);

  Table table({"processor", "packet dest 'xy'", "intermediate processor",
               "intermediate group"});
  for (int src = 0; src < topo.processor_count(); ++src) {
    const int dest = pi(src);
    const int mid = plan.intermediate_of[as_size(src)];
    table.add(src,
              str_cat(topo.group_of(dest), dest),  // the figure's xy label
              mid, topo.group_of(mid));
  }
  table.print(std::cout);

  // Validate the figure's defining property: per source group the
  // intermediate groups are distinct, and per intermediate group the
  // destination groups are distinct.
  const ListSystem ls = list_system_from_permutation(topo, pi);
  std::cout << "\nfair distribution valid: "
            << (is_fair_distribution(ls, plan.fair) ? "yes" : "NO") << '\n';

  Network net(topo);
  net.load_permutation_traffic(pi);
  net.execute(plan.slots);
  std::cout << "two-slot schedule delivers: "
            << (net.all_delivered() ? "yes" : "NO") << "\n\n";
}

void BM_Figure3Route(benchmark::State& state) {
  const Topology topo(3, 3);
  const Permutation pi({5, 1, 7, 2, 0, 6, 3, 8, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_permutation(topo, pi));
  }
}
BENCHMARK(BM_Figure3Route);

}  // namespace
}  // namespace pops::bench

POPSNET_BENCH_MAIN(pops::bench::print_tables)
