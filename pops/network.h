// The POPS(d, g) topology model and its strict slot-level simulator.
//
// A Partitioned Optical Passive Stars network POPS(d, g) has n = d * g
// processors in g groups of d, and g^2 optical star couplers. Coupler
// c(i, j) accepts light from the processors of source group j and
// delivers it to the processors of destination group i. In one time
// slot:
//   * each coupler carries at most one packet (one transmitter),
//   * each processor transmits at most one packet (it may drive
//     several couplers with the same packet — that is an optical
//     multicast),
//   * each processor tunes its receiver to at most one coupler, so it
//     receives at most one packet.
//
// The Network class executes schedules under exactly these rules and
// refuses (with a recorded failure string) anything that violates
// them. Every number the benches print comes from a schedule that went
// through this simulator. Schedules arrive either in the legacy
// vector<SlotPlan> layout or as FlatSchedule slot spans; all slot
// bookkeeping lives in stamped scratch arrays owned by the Network,
// and the packets themselves live in one pooled SoA slab (fixed-stride
// per-processor regions over five parallel field arrays), so executing
// a slot strides contiguous memory and performs no heap allocation
// once the slab is warm.
#pragma once

#include <string>
#include <vector>

#include "perm/permutation.h"
#include "pops/flat_plan.h"
#include "support/alloc_guard.h"
#include "support/check.h"
#include "support/format.h"
#include "support/span.h"
#include "support/thread_annotations.h"

namespace pops {

class Topology {
 public:
  /// d processors per group, g groups.
  Topology(int d, int g) : d_(d), g_(g) {
    POPS_CHECK(d >= 1, "POPS(d, g) needs d >= 1");
    POPS_CHECK(g >= 1, "POPS(d, g) needs g >= 1");
  }

  int d() const { return d_; }
  int g() const { return g_; }
  int group_size() const { return d_; }
  int group_count() const { return g_; }
  int processor_count() const { return d_ * g_; }
  int coupler_count() const { return g_ * g_; }

  int group_of(int processor) const {
    POPS_CHECK(processor >= 0 && processor < processor_count(),
               "group_of: processor out of range");
    return processor / d_;
  }
  int index_in_group(int processor) const {
    POPS_CHECK(processor >= 0 && processor < processor_count(),
               "index_in_group: processor out of range");
    return processor % d_;
  }
  int processor(int group, int index) const {
    POPS_CHECK(group >= 0 && group < g_, "processor: group out of range");
    POPS_CHECK(index >= 0 && index < d_, "processor: index out of range");
    return group * d_ + index;
  }
  /// Dense id of coupler c(dst_group, src_group).
  int coupler(int dst_group, int src_group) const {
    POPS_CHECK(dst_group >= 0 && dst_group < g_,
               "coupler: destination group out of range");
    POPS_CHECK(src_group >= 0 && src_group < g_,
               "coupler: source group out of range");
    return dst_group * g_ + src_group;
  }

  std::string to_string() const {
    return str_cat("POPS(", d_, ",", g_, ")");
  }

 private:
  int d_;
  int g_;
};

struct Packet {
  int id;           // unique per loaded packet (source id for
                    // permutation traffic); -1 means "any"
  int source;       // processor that injected the packet
  int destination;  // processor that must finally receive it
  int size;         // payload size in flits (bookkeeping only)
  int hops;         // slots this packet has traveled so far
};

struct NetworkStats {
  long long slots_executed = 0;
  long long packets_moved = 0;
  long long coupler_slots_busy = 0;
  long long coupler_slot_capacity = 0;

  double average_coupler_utilization() const {
    return coupler_slot_capacity == 0
               ? 0.0
               : static_cast<double>(coupler_slots_busy) /
                     static_cast<double>(coupler_slot_capacity);
  }
};

/// Non-owning view of one processor's packets inside the Network's
/// pooled SoA slab. operator[] (and the iterator) gathers a Packet by
/// value from the five parallel field arrays; range-for with
/// `const Packet&` binds the gathered temporary as usual. Valid until
/// the next mutating Network call (loading, executing, or resetting
/// may grow or rewrite the slab).
class PacketBufferView {
 public:
  PacketBufferView(const int* id, const int* source,
                   const int* destination, const int* size,
                   const int* hops, int count)
      : id_(id),
        source_(source),
        destination_(destination),
        size_(size),
        hops_(hops),
        count_(count) {}

  std::size_t size() const { return as_size(count_); }
  int count() const { return count_; }
  bool empty() const { return count_ == 0; }

  Packet operator[](std::size_t i) const {
    POPS_CHECK(i < as_size(count_),
               "PacketBufferView index out of range");
    return Packet{id_[i], source_[i], destination_[i], size_[i],
                  hops_[i]};
  }

  /// Gather iterator over the view it came from; the view must stay
  /// alive for as long as its iterators (range-for guarantees this).
  class Iterator {
   public:
    Iterator(const PacketBufferView* view, int at)
        : view_(view), at_(at) {}
    Packet operator*() const { return (*view_)[as_size(at_)]; }
    Iterator& operator++() {
      ++at_;
      return *this;
    }
    bool operator==(const Iterator& other) const {
      return at_ == other.at_;
    }
    bool operator!=(const Iterator& other) const {
      return at_ != other.at_;
    }

   private:
    const PacketBufferView* view_;
    int at_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, count_); }

 private:
  const int* id_;
  const int* source_;
  const int* destination_;
  const int* size_;
  const int* hops_;
  int count_;
};

class POPS_THREAD_COMPATIBLE Network {
 public:
  explicit Network(const Topology& topo);

  /// Drops all packets and statistics.
  void reset();

  /// Replaces the current traffic with one packet per processor:
  /// processor i holds packet {id = i, destination = pi(i)}.
  /// Statistics are kept (reset() clears them).
  void load_permutation_traffic(const Permutation& pi);

  /// Adds one packet at packet.source. By value: a Packet is five
  /// ints, cheaper in registers than behind a pointer.
  void load_packet(Packet packet);

  /// Executes the slots in order. Returns false (and records the
  /// failure) as soon as a slot violates the model; later slots are
  /// not executed. The FlatSchedule overload (and the Span-based
  /// execute_slot underneath it) is the canonical path; the nested
  /// vector<SlotPlan> overload delegates slot by slot and survives
  /// only for legacy plans.
  bool execute(const FlatSchedule& schedule);
  [[deprecated(
      "execute a FlatSchedule (or loop execute_slot over Spans)")]]
  bool execute(const std::vector<SlotPlan>& slots);
  bool execute_slot(const SlotPlan& slot) {
    return execute_slot(Span<const Transmission>(slot.transmissions));
  }
  bool execute_slot(Span<const Transmission> transmissions);

  /// True when every loaded packet sits at its destination.
  bool all_delivered() const;

  /// False after the first rejected slot; failure() says why.
  bool ok() const { return failure_.empty(); }
  const std::string& failure() const { return failure_; }

  const Topology& topology() const { return topo_; }
  const NetworkStats& stats() const { return stats_; }
  /// The packets currently held at `processor`, as a gather view into
  /// the SoA slab. Withdrawal is swap-and-pop, so buffer order is an
  /// implementation detail — delivery semantics never depend on it.
  PacketBufferView buffer(int processor) const {
    POPS_CHECK(processor >= 0 && processor < topo_.processor_count(),
               "buffer: processor out of range");
    const std::size_t base =
        as_size(processor) * as_size(slab_stride_);
    return PacketBufferView(
        slab_id_.data() + base, slab_source_.data() + base,
        slab_destination_.data() + base, slab_size_.data() + base,
        slab_hops_.data() + base, buffer_count_[as_size(processor)]);
  }
  int packet_count() const { return packet_count_; }

  /// Total capacity of the packet buffers and slot scratch arenas, in
  /// elements — compared across executions by the zero-allocation
  /// tests.
  std::size_t scratch_capacity() const;

  /// Pre-sizes every per-processor packet buffer: executions whose
  /// peak buffer occupancy stays within `per_processor` packets never
  /// grow scratch_capacity(). The TrafficServer calls this with its
  /// window worst case so steady-state serving is allocation-free.
  void reserve_buffers(int per_processor);

  /// Arms a ScopedAllocationBan around every subsequent execute()
  /// call: once the owner has warmed/reserved the buffers, any heap
  /// allocation while executing a schedule aborts under
  /// POPS_ALLOC_GUARD builds. The RoutingEngine and TrafficServer arm
  /// their internal simulators after their first verified run.
  void ban_steady_allocations(bool banned) { steady_banned_ = banned; }

 private:
  /// Records the first failure and returns false. The message parts
  /// are formatted lazily, under a ScopedAllocationAllow: composing a
  /// rejection diagnostic allocates, and that must not trip an armed
  /// execute() ban — the caller wants the model violation reported,
  /// not the guard.
  template <typename... Parts>
  bool fail(const Parts&... parts) {
    if (failure_.empty()) {
      ScopedAllocationAllow allow;
      failure_ = str_cat(parts...);
    }
    return false;
  }

  /// Widens every per-processor slab region to `new_stride` packets,
  /// shifting occupied prefixes in place (back to front, so rows never
  /// overwrite each other). No-op when new_stride <= slab_stride_.
  void grow_stride(int new_stride);

  Topology topo_;
  // Pooled SoA packet slab: processor p's packets occupy indices
  // [p * slab_stride_, p * slab_stride_ + buffer_count_[p]) of five
  // parallel field arrays. Fixed stride keeps rows independent, so
  // loading and delivering are O(1) appends and withdrawal is a
  // swap-and-pop instead of vector::erase's O(k) shift.
  int slab_stride_ = 0;
  std::vector<int> buffer_count_;  // per processor
  std::vector<int> slab_id_;
  std::vector<int> slab_source_;
  std::vector<int> slab_destination_;
  std::vector<int> slab_size_;
  std::vector<int> slab_hops_;
  int packet_count_ = 0;
  NetworkStats stats_;
  std::string failure_;
  bool steady_banned_ = false;

  // Per-slot scratch arenas. An entry is valid only when its stamp
  // equals epoch_ (bumped once per execute_slot), so no clearing pass
  // over the n + g^2 arrays is needed between slots.
  long long epoch_ = 0;
  std::vector<long long> source_stamp_;    // per processor
  std::vector<long long> coupler_stamp_;   // per coupler
  std::vector<long long> receiver_stamp_;  // per processor
  std::vector<int> packet_of_source_;      // per processor
  std::vector<int> source_of_coupler_;     // per coupler
  std::vector<int> buffer_index_of_source_;  // per processor
  std::vector<Packet> in_flight_;          // per processor
  std::vector<int> touched_sources_;       // distinct senders, in order
};

}  // namespace pops
