// Schedule representations for the POPS(d, g) slot model.
//
// Two layouts coexist:
//
//   * SlotPlan / std::vector<SlotPlan> — the original
//     vector-of-vectors form. Convenient to build by hand in tests and
//     kept as the compatibility surface of the free routing functions.
//   * FlatSchedule — the zero-allocation form the RoutingEngine emits
//     and the simulator, verifier and benches consume: one contiguous
//     Transmission array plus CSR-style slot offsets. Rebuilding a
//     schedule in place (clear + begin_slot + push) reuses the arrays,
//     so bulk routing performs no steady-state heap allocation.
#pragma once

#include <vector>

#include "support/check.h"
#include "support/span.h"

namespace pops {

/// One optical transmission: `source` drives the coupler
/// c(group(destination), group(source)) with packet `packet`, and
/// `destination` tunes its receiver to that coupler.
struct Transmission {
  int source;
  int destination;
  int packet;
};

/// All transmissions of one time slot (nested legacy layout).
struct SlotPlan {
  std::vector<Transmission> transmissions;
};

/// CSR-style schedule: transmissions of slot s are the contiguous
/// range [offsets_[s], offsets_[s + 1]) of one flat array.
class FlatSchedule {
 public:
  FlatSchedule() { clear(); }

  /// Drops all slots but keeps the array capacities (the point of the
  /// flat layout: rebuild in place, allocation-free once warm).
  void clear() {
    transmissions_.clear();
    offsets_.clear();
    offsets_.push_back(0);
  }

  /// Opens a new (initially empty) slot; push() appends to it.
  void begin_slot() { offsets_.push_back(as_int(transmissions_.size())); }

  /// Appends a transmission to the currently open slot. By value: a
  /// Transmission is three ints, cheaper in registers than behind a
  /// pointer.
  void push(Transmission transmission) {
    POPS_CHECK(slot_count() > 0, "FlatSchedule::push without a slot");
    transmissions_.push_back(transmission);
    offsets_.back() = as_int(transmissions_.size());
  }

  int slot_count() const { return as_int(offsets_.size()) - 1; }
  int transmission_count() const { return as_int(transmissions_.size()); }

  Span<const Transmission> slot(int s) const {
    POPS_CHECK(s >= 0 && s < slot_count(),
               "FlatSchedule::slot out of range");
    const int lo = offsets_[as_size(s)];
    const int hi = offsets_[as_size(s + 1)];
    return Span<const Transmission>(transmissions_.data() + lo,
                                    as_size(hi - lo));
  }
  Span<const Transmission> transmissions() const { return transmissions_; }

  /// Pre-sizes the arrays so a subsequent rebuild cannot reallocate.
  void reserve(int transmissions, int slots) {
    transmissions_.reserve(as_size(transmissions));
    offsets_.reserve(as_size(slots + 1));
  }

  /// Capacity snapshot for the zero-allocation tests.
  std::size_t transmission_capacity() const {
    return transmissions_.capacity();
  }
  std::size_t offset_capacity() const { return offsets_.capacity(); }

  /// Copies out to the nested legacy layout (the wrapper API).
  std::vector<SlotPlan> to_slot_plans() const;

 private:
  std::vector<Transmission> transmissions_;
  std::vector<int> offsets_;  // slot_count() + 1 entries, offsets_[0] == 0
};

}  // namespace pops
