#include "pops/flat_plan.h"

namespace pops {

std::vector<SlotPlan> FlatSchedule::to_slot_plans() const {
  std::vector<SlotPlan> slots(as_size(slot_count()));
  for (int s = 0; s < slot_count(); ++s) {
    const Span<const Transmission> range = slot(s);
    slots[as_size(s)].transmissions.assign(range.begin(), range.end());
  }
  return slots;
}

}  // namespace pops
