#include "pops/patterns.h"

#include <vector>

namespace pops {
namespace {

Permutation group_reversal(const Topology& topo) {
  const int n = topo.processor_count();
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    images[as_size(p)] = topo.processor(
        topo.group_count() - 1 - topo.group_of(p), topo.index_in_group(p));
  }
  return Permutation(std::move(images));
}

// Out-shuffle riffle: interleave the first ceil(n/2) processors with
// the rest (0 stays first; for odd n the middle element maps last).
// This is the classic shuffle-exchange round generalized to any n.
Permutation perfect_shuffle(const Topology& topo) {
  const int n = topo.processor_count();
  const int half = (n + 1) / 2;
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    images[as_size(p)] = p < half ? 2 * p : 2 * (p - half) + 1;
  }
  return Permutation(std::move(images));
}

// Matrix transpose of the g x d processor grid: (group, index) ->
// index * g + group, i.e. the new group is the old in-group index.
// Self-inverse exactly when d == g.
Permutation transpose(const Topology& topo) {
  const int n = topo.processor_count();
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    images[as_size(p)] =
        topo.index_in_group(p) * topo.group_count() + topo.group_of(p);
  }
  return Permutation(std::move(images));
}

}  // namespace

std::string to_string(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kIdentity:
      return "identity";
    case TrafficPattern::kGroupReversal:
      return "group-reversal";
    case TrafficPattern::kPerfectShuffle:
      return "perfect-shuffle";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kSeededRandom:
      return "seeded-random";
  }
  POPS_CHECK(false, "unknown TrafficPattern");
  return "";
}

Permutation make_pattern(const Topology& topo, TrafficPattern pattern,
                         std::uint64_t seed) {
  switch (pattern) {
    case TrafficPattern::kIdentity:
      return Permutation::identity(topo.processor_count());
    case TrafficPattern::kGroupReversal:
      return group_reversal(topo);
    case TrafficPattern::kPerfectShuffle:
      return perfect_shuffle(topo);
    case TrafficPattern::kTranspose:
      return transpose(topo);
    case TrafficPattern::kSeededRandom: {
      Rng rng(seed);
      return Permutation::random(topo.processor_count(), rng);
    }
  }
  POPS_CHECK(false, "unknown TrafficPattern");
  return Permutation::identity(1);
}

SlotPlan one_to_all(const Topology& topo, int source) {
  POPS_CHECK(source >= 0 && source < topo.processor_count(),
             "one_to_all: source out of range");
  SlotPlan slot;
  slot.transmissions.reserve(as_size(topo.processor_count()));
  for (int p = 0; p < topo.processor_count(); ++p) {
    slot.transmissions.push_back(Transmission{source, p, -1});
  }
  return slot;
}

}  // namespace pops
