#include "pops/patterns.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pops {
namespace {

Permutation group_reversal(const Topology& topo) {
  const int n = topo.processor_count();
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    images[as_size(p)] = topo.processor(
        topo.group_count() - 1 - topo.group_of(p), topo.index_in_group(p));
  }
  return Permutation(std::move(images));
}

// Out-shuffle riffle: interleave the first ceil(n/2) processors with
// the rest (0 stays first; for odd n the middle element maps last).
// This is the classic shuffle-exchange round generalized to any n.
Permutation perfect_shuffle(const Topology& topo) {
  const int n = topo.processor_count();
  const int half = (n + 1) / 2;
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    images[as_size(p)] = p < half ? 2 * p : 2 * (p - half) + 1;
  }
  return Permutation(std::move(images));
}

// Matrix transpose of the g x d processor grid: (group, index) ->
// index * g + group, i.e. the new group is the old in-group index.
// Self-inverse exactly when d == g.
Permutation transpose(const Topology& topo) {
  const int n = topo.processor_count();
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    images[as_size(p)] =
        topo.index_in_group(p) * topo.group_count() + topo.group_of(p);
  }
  return Permutation(std::move(images));
}

}  // namespace

std::string to_string(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kIdentity:
      return "identity";
    case TrafficPattern::kGroupReversal:
      return "group-reversal";
    case TrafficPattern::kPerfectShuffle:
      return "perfect-shuffle";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kSeededRandom:
      return "seeded-random";
  }
  POPS_CHECK(false, "unknown TrafficPattern");
  return "";
}

Permutation make_pattern(const Topology& topo, TrafficPattern pattern,
                         std::uint64_t seed) {
  switch (pattern) {
    case TrafficPattern::kIdentity:
      return Permutation::identity(topo.processor_count());
    case TrafficPattern::kGroupReversal:
      return group_reversal(topo);
    case TrafficPattern::kPerfectShuffle:
      return perfect_shuffle(topo);
    case TrafficPattern::kTranspose:
      return transpose(topo);
    case TrafficPattern::kSeededRandom: {
      Rng rng(seed);
      return Permutation::random(topo.processor_count(), rng);
    }
  }
  POPS_CHECK(false, "unknown TrafficPattern");
  return Permutation::identity(1);
}

std::string to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform:
      return "uniform";
    case ArrivalProcess::kZipfHotGroup:
      return "zipf-hot-group";
    case ArrivalProcess::kBurstyOnOff:
      return "bursty-on-off";
  }
  POPS_CHECK(false, "unknown ArrivalProcess");
  return "";
}

ArrivalGenerator::ArrivalGenerator(const Topology& topo,
                                   const ArrivalConfig& config)
    : topo_(topo), config_(config), rng_(config.seed) {
  POPS_CHECK(config_.mean_gap_ticks >= 0,
             "ArrivalConfig: mean_gap_ticks must be >= 0");
  if (config_.process == ArrivalProcess::kZipfHotGroup) {
    POPS_CHECK(config_.zipf_exponent > 0,
               "ArrivalConfig: zipf_exponent must be positive");
    // Cumulative (r+1)^-s weights over the g destination-group ranks,
    // normalized to end at 1. Built once; next() only binary-searches.
    zipf_cdf_.resize(as_size(topo_.group_count()));
    double total = 0;
    for (int r = 0; r < topo_.group_count(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1),
                              config_.zipf_exponent);
      zipf_cdf_[as_size(r)] = total;
    }
    for (double& value : zipf_cdf_) value /= total;
  }
  if (config_.process == ArrivalProcess::kBurstyOnOff) {
    POPS_CHECK(config_.mean_burst_length >= 1,
               "ArrivalConfig: mean_burst_length must be >= 1");
    POPS_CHECK(config_.mean_off_gap_ticks >= 1,
               "ArrivalConfig: mean_off_gap_ticks must be >= 1");
  }
}

int ArrivalGenerator::draw_destination(int source) {
  const int n = topo_.processor_count();
  int destination;
  if (config_.process == ArrivalProcess::kZipfHotGroup) {
    const double u = rng_.next_double();
    const auto it =
        std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    const int group = std::min(
        as_int(static_cast<std::size_t>(it - zipf_cdf_.begin())),
        topo_.group_count() - 1);
    destination = topo_.processor(group, rng_.next_below(topo_.d()));
  } else {
    destination = rng_.next_below(n);
  }
  // Self-demands carry no traffic; bump deterministically (a no-op
  // only on the one-processor topology).
  if (destination == source && n > 1) {
    destination = (destination + 1) % n;
  }
  return destination;
}

Demand ArrivalGenerator::next() {
  const int mean_gap = config_.mean_gap_ticks;
  switch (config_.process) {
    case ArrivalProcess::kUniform:
    case ArrivalProcess::kZipfHotGroup:
      if (mean_gap > 0) {
        next_tick_ +=
            static_cast<std::uint64_t>(rng_.next_below(2 * mean_gap + 1));
      }
      break;
    case ArrivalProcess::kBurstyOnOff:
      if (burst_remaining_ == 0) {
        burst_remaining_ =
            rng_.uniform_int(1, 2 * config_.mean_burst_length - 1);
        next_tick_ += static_cast<std::uint64_t>(
            rng_.uniform_int(1, 2 * config_.mean_off_gap_ticks));
      } else if (mean_gap > 0) {
        next_tick_ +=
            static_cast<std::uint64_t>(rng_.next_below(mean_gap + 1));
      }
      --burst_remaining_;
      break;
  }
  Demand demand;
  demand.source = rng_.next_below(topo_.processor_count());
  demand.destination = draw_destination(demand.source);
  demand.payload = config_.payload_flits;
  demand.arrival_tick = next_tick_;
  return demand;
}

SlotPlan one_to_all(const Topology& topo, int source) {
  POPS_CHECK(source >= 0 && source < topo.processor_count(),
             "one_to_all: source out of range");
  SlotPlan slot;
  slot.transmissions.reserve(as_size(topo.processor_count()));
  for (int p = 0; p < topo.processor_count(); ++p) {
    slot.transmissions.push_back(Transmission{source, p, -1});
  }
  return slot;
}

}  // namespace pops
