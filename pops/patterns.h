// Traffic-pattern generators for POPS(d, g) scenarios.
//
// The benches and tests sweep structured permutation traffic beyond
// the adversarial families in perm/families.h: patterns here model the
// communication rounds of real parallel workloads (matrix transpose,
// FFT-style perfect shuffle, group reversal) plus seeded random
// traffic, all parameterized by the topology so every generator yields
// a valid permutation of its n = d * g processors. one_to_all() builds
// the canonical optical-multicast slot: one transmitter driving every
// coupler of its source-group column at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perm/permutation.h"
#include "pops/network.h"
#include "support/prng.h"

namespace pops {

enum class TrafficPattern {
  kIdentity = 0,        // i -> i: every packet is already home
  kGroupReversal = 1,   // (group, index) -> (g - 1 - group, index)
  kPerfectShuffle = 2,  // riffle interleave of the two halves
  kTranspose = 3,       // (group, index) -> processor index * g + group
  kSeededRandom = 4,    // Permutation::random from an explicit seed
};

inline constexpr TrafficPattern kAllTrafficPatterns[] = {
    TrafficPattern::kIdentity,
    TrafficPattern::kGroupReversal,
    TrafficPattern::kPerfectShuffle,
    TrafficPattern::kTranspose,
    TrafficPattern::kSeededRandom,
};

std::string to_string(TrafficPattern pattern);

/// Builds the pattern's permutation on topo's processors. `seed` is
/// only consumed by kSeededRandom (same seed, same permutation).
Permutation make_pattern(const Topology& topo, TrafficPattern pattern,
                         std::uint64_t seed = 0);

/// The canonical optical multicast: `source` drives every coupler
/// c(i, group(source)) with its single buffered packet (packet id -1 =
/// "any"), and every processor — including `source` itself — tunes to
/// the coupler of its own group. One slot, n deliveries.
SlotPlan one_to_all(const Topology& topo, int source);

// ---------------------------------------------------------------------
// Open-loop arrival generators — the demand streams the TrafficServer
// (serve/) accumulates into h-relation windows. Arrivals are open-loop:
// the tick of each demand is fixed by the generator alone, never by how
// fast the server drains its windows, so queueing delay is a real
// measurement and not an artifact of backpressure.
// ---------------------------------------------------------------------

/// One point-to-point demand: `source` must deliver `payload` flits to
/// `destination`, injected at `arrival_tick` (ticks are the slot-time
/// unit of the simulator).
struct Demand {
  int source = 0;
  int destination = 0;
  int payload = 1;
  std::uint64_t arrival_tick = 0;
};

inline bool operator==(const Demand& a, const Demand& b) {
  return a.source == b.source && a.destination == b.destination &&
         a.payload == b.payload && a.arrival_tick == b.arrival_tick;
}

enum class ArrivalProcess {
  kUniform = 0,       // src, dst uniform; gaps uniform around the mean
  kZipfHotGroup = 1,  // dst group Zipf-skewed (group 0 hottest)
  kBurstyOnOff = 2,   // back-to-back bursts separated by idle gaps
};

inline constexpr ArrivalProcess kAllArrivalProcesses[] = {
    ArrivalProcess::kUniform,
    ArrivalProcess::kZipfHotGroup,
    ArrivalProcess::kBurstyOnOff,
};

std::string to_string(ArrivalProcess process);

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kUniform;
  std::uint64_t seed = 0;
  /// Mean inter-arrival gap in ticks (uniform and Zipf draw gaps
  /// uniformly from [0, 2 * mean]; bursty uses it inside a burst).
  int mean_gap_ticks = 1;
  /// kZipfHotGroup: weight of destination group r is (r+1)^-exponent.
  double zipf_exponent = 1.2;
  /// kBurstyOnOff: demands per burst, uniform in [1, 2 * mean - 1].
  int mean_burst_length = 32;
  /// kBurstyOnOff: idle gap between bursts, uniform in [1, 2 * mean].
  int mean_off_gap_ticks = 256;
  /// Payload of every demand, in flits.
  int payload_flits = 1;
};

/// Deterministic open-loop demand stream: a given (topology, config)
/// pair — the seed included — yields a byte-identical sequence of
/// Demands on every run (the Rng is portable by construction).
/// Arrival ticks are nondecreasing and source != destination whenever
/// the topology has more than one processor.
class ArrivalGenerator {
 public:
  ArrivalGenerator(const Topology& topo, const ArrivalConfig& config);

  const Topology& topology() const { return topo_; }
  const ArrivalConfig& config() const { return config_; }

  /// The next demand of the stream.
  Demand next();

 private:
  int draw_destination(int source);

  Topology topo_;
  ArrivalConfig config_;
  Rng rng_;
  std::uint64_t next_tick_ = 0;
  int burst_remaining_ = 0;
  std::vector<double> zipf_cdf_;  // per destination group, normalized
};

}  // namespace pops
