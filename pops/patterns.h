// Traffic-pattern generators for POPS(d, g) scenarios.
//
// The benches and tests sweep structured permutation traffic beyond
// the adversarial families in perm/families.h: patterns here model the
// communication rounds of real parallel workloads (matrix transpose,
// FFT-style perfect shuffle, group reversal) plus seeded random
// traffic, all parameterized by the topology so every generator yields
// a valid permutation of its n = d * g processors. one_to_all() builds
// the canonical optical-multicast slot: one transmitter driving every
// coupler of its source-group column at once.
#pragma once

#include <cstdint>
#include <string>

#include "perm/permutation.h"
#include "pops/network.h"

namespace pops {

enum class TrafficPattern {
  kIdentity = 0,        // i -> i: every packet is already home
  kGroupReversal = 1,   // (group, index) -> (g - 1 - group, index)
  kPerfectShuffle = 2,  // riffle interleave of the two halves
  kTranspose = 3,       // (group, index) -> processor index * g + group
  kSeededRandom = 4,    // Permutation::random from an explicit seed
};

inline constexpr TrafficPattern kAllTrafficPatterns[] = {
    TrafficPattern::kIdentity,
    TrafficPattern::kGroupReversal,
    TrafficPattern::kPerfectShuffle,
    TrafficPattern::kTranspose,
    TrafficPattern::kSeededRandom,
};

std::string to_string(TrafficPattern pattern);

/// Builds the pattern's permutation on topo's processors. `seed` is
/// only consumed by kSeededRandom (same seed, same permutation).
Permutation make_pattern(const Topology& topo, TrafficPattern pattern,
                         std::uint64_t seed = 0);

/// The canonical optical multicast: `source` drives every coupler
/// c(i, group(source)) with its single buffered packet (packet id -1 =
/// "any"), and every processor — including `source` itself — tunes to
/// the coupler of its own group. One slot, n deliveries.
SlotPlan one_to_all(const Topology& topo, int source);

}  // namespace pops
