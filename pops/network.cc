#include "pops/network.h"

#include <algorithm>

namespace pops {
namespace {

// Worst-case simultaneous occupancy of one processor buffer under
// single-packet-per-processor traffic: its own packet (until sent), one
// relayed packet in transit, and the finally delivered packet. Reserved
// up front so steady-state execution never grows a buffer.
constexpr std::size_t kSteadyBufferReserve = 4;

}  // namespace

Network::Network(const Topology& topo)
    : topo_(topo),
      buffers_(as_size(topo.processor_count())),
      source_stamp_(as_size(topo.processor_count()), 0),
      coupler_stamp_(as_size(topo.coupler_count()), 0),
      receiver_stamp_(as_size(topo.processor_count()), 0),
      packet_of_source_(as_size(topo.processor_count()), -1),
      source_of_coupler_(as_size(topo.coupler_count()), -1),
      buffer_index_of_source_(as_size(topo.processor_count()), -1),
      in_flight_(as_size(topo.processor_count())) {
  for (auto& buffer : buffers_) buffer.reserve(kSteadyBufferReserve);
  touched_sources_.reserve(as_size(topo.processor_count()));
}

void Network::reset() {
  for (auto& buffer : buffers_) buffer.clear();
  packet_count_ = 0;
  stats_ = NetworkStats{};
  failure_.clear();
}

void Network::load_permutation_traffic(const Permutation& pi) {
  POPS_CHECK(pi.size() == topo_.processor_count(),
             "permutation size does not match the topology");
  for (auto& buffer : buffers_) buffer.clear();
  packet_count_ = 0;
  failure_.clear();
  for (int source = 0; source < pi.size(); ++source) {
    load_packet(Packet{source, source, pi(source), 1, 0});
  }
}

void Network::load_packet(Packet packet) {
  POPS_CHECK(packet.source >= 0 &&
                 packet.source < topo_.processor_count(),
             "load_packet: source out of range");
  POPS_CHECK(packet.destination >= -1 &&
                 packet.destination < topo_.processor_count(),
             "load_packet: destination out of range");
  buffers_[as_size(packet.source)].push_back(packet);
  ++packet_count_;
}

bool Network::execute(const std::vector<SlotPlan>& slots) {
  ScopedAllocationBan ban("Network::execute", steady_banned_);
  for (const SlotPlan& slot : slots) {
    if (!execute_slot(slot)) return false;
  }
  return true;
}

bool Network::execute(const FlatSchedule& schedule) {
  ScopedAllocationBan ban("Network::execute", steady_banned_);
  for (int s = 0; s < schedule.slot_count(); ++s) {
    if (!execute_slot(schedule.slot(s))) return false;
  }
  return true;
}

bool Network::execute_slot(Span<const Transmission> transmissions) {
  if (!ok()) return false;
  const long long slot_index = stats_.slots_executed;
  const int n = topo_.processor_count();
  ++epoch_;
  touched_sources_.clear();
  long long busy_couplers = 0;

  // --- Validation pass: nothing is moved until the whole slot checks
  // out against the optical model. ---
  for (const Transmission& t : transmissions) {
    if (t.source < 0 || t.source >= n) {
      return fail("slot ", slot_index, ": source processor ", t.source,
                  " out of range");
    }
    if (t.destination < 0 || t.destination >= n) {
      return fail("slot ", slot_index, ": destination processor ",
                  t.destination, " out of range");
    }
  }

  for (const Transmission& t : transmissions) {
    const int src_group = topo_.group_of(t.source);
    const int dst_group = topo_.group_of(t.destination);
    const int coupler = topo_.coupler(dst_group, src_group);

    // One packet per transmitting processor (multicast onto several
    // couplers is the same packet on each).
    if (source_stamp_[as_size(t.source)] != epoch_) {
      source_stamp_[as_size(t.source)] = epoch_;
      packet_of_source_[as_size(t.source)] = t.packet;
      touched_sources_.push_back(t.source);
    } else if (packet_of_source_[as_size(t.source)] != t.packet) {
      return fail("slot ", slot_index, ": processor ", t.source,
                  " transmits two different packets (",
                  packet_of_source_[as_size(t.source)], " and ", t.packet,
                  ")");
    }
    // One transmitter per coupler.
    if (coupler_stamp_[as_size(coupler)] != epoch_) {
      coupler_stamp_[as_size(coupler)] = epoch_;
      source_of_coupler_[as_size(coupler)] = t.source;
      ++busy_couplers;
    } else if (source_of_coupler_[as_size(coupler)] != t.source) {
      return fail("slot ", slot_index, ": coupler c(", dst_group, ",",
                  src_group, ") oversubscribed by processors ",
                  source_of_coupler_[as_size(coupler)], " and ", t.source);
    }
    // One tuned coupler per receiver.
    if (receiver_stamp_[as_size(t.destination)] == epoch_) {
      return fail("slot ", slot_index, ": processor ", t.destination,
                  " tunes to more than one coupler");
    }
    receiver_stamp_[as_size(t.destination)] = epoch_;
  }

  // Resolve each transmitting processor's packet in its buffer.
  for (const int source : touched_sources_) {
    const std::vector<Packet>& buffer = buffers_[as_size(source)];
    const int packet_id = packet_of_source_[as_size(source)];
    if (packet_id == -1) {
      if (buffer.size() != 1) {
        return fail("slot ", slot_index, ": processor ", source,
                    " asked to send 'any' packet but holds ",
                    buffer.size());
      }
      buffer_index_of_source_[as_size(source)] = 0;
      continue;
    }
    const int buffer_count = as_int(buffer.size());
    int found = buffer_count;
    for (int i = 0; i < buffer_count; ++i) {
      if (buffer[as_size(i)].id == packet_id) {
        found = i;
        break;
      }
    }
    if (found == buffer_count) {
      return fail("slot ", slot_index, ": processor ", source,
                  " does not hold packet ", packet_id);
    }
    buffer_index_of_source_[as_size(source)] = found;
  }

  // --- Commit pass: withdraw every transmitted packet, then deliver
  // one copy per tuned receiver. ---
  for (const int source : touched_sources_) {
    std::vector<Packet>& buffer = buffers_[as_size(source)];
    const int index = buffer_index_of_source_[as_size(source)];
    in_flight_[as_size(source)] = buffer[as_size(index)];
    buffer.erase(buffer.begin() + index);
    --packet_count_;
  }
  for (const Transmission& t : transmissions) {
    Packet copy = in_flight_[as_size(t.source)];
    copy.hops += 1;
    buffers_[as_size(t.destination)].push_back(copy);
    ++packet_count_;
    ++stats_.packets_moved;
  }

  stats_.slots_executed += 1;
  stats_.coupler_slots_busy += busy_couplers;
  stats_.coupler_slot_capacity += topo_.coupler_count();
  return true;
}

bool Network::all_delivered() const {
  for (int p = 0; p < topo_.processor_count(); ++p) {
    for (const Packet& packet : buffers_[as_size(p)]) {
      if (packet.destination != p) return false;
    }
  }
  return true;
}

std::size_t Network::scratch_capacity() const {
  std::size_t total =
      buffers_.capacity() + source_stamp_.capacity() +
      coupler_stamp_.capacity() + receiver_stamp_.capacity() +
      packet_of_source_.capacity() + source_of_coupler_.capacity() +
      buffer_index_of_source_.capacity() + in_flight_.capacity() +
      touched_sources_.capacity();
  for (const auto& buffer : buffers_) total += buffer.capacity();
  return total;
}

void Network::reserve_buffers(int per_processor) {
  POPS_CHECK(per_processor >= 0,
             "reserve_buffers needs a nonnegative capacity");
  for (auto& buffer : buffers_) {
    buffer.reserve(as_size(per_processor));
  }
}

}  // namespace pops
