#include "pops/network.h"

#include <algorithm>
#include <map>

namespace pops {

Network::Network(const Topology& topo)
    : topo_(topo), buffers_(as_size(topo.processor_count())) {}

void Network::reset() {
  for (auto& buffer : buffers_) buffer.clear();
  packet_count_ = 0;
  stats_ = NetworkStats{};
  failure_.clear();
}

void Network::load_permutation_traffic(const Permutation& pi) {
  POPS_CHECK(pi.size() == topo_.processor_count(),
             "permutation size does not match the topology");
  for (auto& buffer : buffers_) buffer.clear();
  packet_count_ = 0;
  failure_.clear();
  for (int source = 0; source < pi.size(); ++source) {
    load_packet(Packet{source, source, pi(source), 1, 0});
  }
}

void Network::load_packet(const Packet& packet) {
  POPS_CHECK(packet.source >= 0 &&
                 packet.source < topo_.processor_count(),
             "load_packet: source out of range");
  POPS_CHECK(packet.destination >= -1 &&
                 packet.destination < topo_.processor_count(),
             "load_packet: destination out of range");
  buffers_[as_size(packet.source)].push_back(packet);
  ++packet_count_;
}

bool Network::execute(const std::vector<SlotPlan>& slots) {
  for (const SlotPlan& slot : slots) {
    if (!execute_slot(slot)) return false;
  }
  return true;
}

bool Network::execute_slot(const SlotPlan& slot) {
  if (!ok()) return false;
  const long long slot_index = stats_.slots_executed;
  const int n = topo_.processor_count();

  // --- Validation pass: nothing is moved until the whole slot checks
  // out against the optical model. ---
  for (const Transmission& t : slot.transmissions) {
    if (t.source < 0 || t.source >= n) {
      return fail(str_cat("slot ", slot_index, ": source processor ",
                          t.source, " out of range"));
    }
    if (t.destination < 0 || t.destination >= n) {
      return fail(str_cat("slot ", slot_index,
                          ": destination processor ", t.destination,
                          " out of range"));
    }
  }

  // packet id requested by each transmitting processor (one packet per
  // processor per slot, possibly multicast onto several couplers).
  std::map<int, int> packet_of_source;
  // transmitter driving each coupler.
  std::map<int, int> source_of_coupler;
  std::map<int, int> receive_count;
  for (const Transmission& t : slot.transmissions) {
    const int src_group = topo_.group_of(t.source);
    const int dst_group = topo_.group_of(t.destination);
    const int coupler = topo_.coupler(dst_group, src_group);

    const auto [source_it, new_source] =
        packet_of_source.emplace(t.source, t.packet);
    if (!new_source && source_it->second != t.packet) {
      return fail(str_cat("slot ", slot_index, ": processor ", t.source,
                          " transmits two different packets (",
                          source_it->second, " and ", t.packet, ")"));
    }
    const auto [coupler_it, new_coupler] =
        source_of_coupler.emplace(coupler, t.source);
    if (!new_coupler && coupler_it->second != t.source) {
      return fail(str_cat(
          "slot ", slot_index, ": coupler c(", dst_group, ",", src_group,
          ") oversubscribed by processors ", coupler_it->second, " and ",
          t.source));
    }
    if (++receive_count[t.destination] > 1) {
      return fail(str_cat("slot ", slot_index, ": processor ",
                          t.destination,
                          " tunes to more than one coupler"));
    }
  }

  // Resolve each transmitting processor's packet in its buffer.
  std::map<int, std::size_t> buffer_slot_of_source;
  for (auto& [source, packet_id] : packet_of_source) {
    const std::vector<Packet>& buffer = buffers_[as_size(source)];
    if (packet_id == -1) {
      if (buffer.size() != 1) {
        return fail(str_cat("slot ", slot_index, ": processor ", source,
                            " asked to send 'any' packet but holds ",
                            buffer.size()));
      }
      buffer_slot_of_source[source] = 0;
      continue;
    }
    std::size_t found = buffer.size();
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i].id == packet_id) {
        found = i;
        break;
      }
    }
    if (found == buffer.size()) {
      return fail(str_cat("slot ", slot_index, ": processor ", source,
                          " does not hold packet ", packet_id));
    }
    buffer_slot_of_source[source] = found;
  }

  // --- Commit pass: withdraw every transmitted packet, then deliver
  // one copy per tuned receiver. ---
  std::map<int, Packet> in_flight;
  for (const auto& [source, buffer_index] : buffer_slot_of_source) {
    std::vector<Packet>& buffer = buffers_[as_size(source)];
    in_flight.emplace(source, buffer[buffer_index]);
    buffer.erase(buffer.begin() +
                 static_cast<std::ptrdiff_t>(buffer_index));
    --packet_count_;
  }
  for (const Transmission& t : slot.transmissions) {
    Packet copy = in_flight.at(t.source);
    copy.hops += 1;
    buffers_[as_size(t.destination)].push_back(copy);
    ++packet_count_;
    ++stats_.packets_moved;
  }

  stats_.slots_executed += 1;
  stats_.coupler_slots_busy +=
      static_cast<long long>(source_of_coupler.size());
  stats_.coupler_slot_capacity += topo_.coupler_count();
  return true;
}

bool Network::all_delivered() const {
  for (int p = 0; p < topo_.processor_count(); ++p) {
    for (const Packet& packet : buffers_[as_size(p)]) {
      if (packet.destination != p) return false;
    }
  }
  return true;
}

bool Network::fail(const std::string& message) {
  if (failure_.empty()) failure_ = message;
  return false;
}

}  // namespace pops
