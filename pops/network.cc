#include "pops/network.h"

#include <algorithm>

namespace pops {
namespace {

// Worst-case simultaneous occupancy of one processor buffer under
// single-packet-per-processor traffic: its own packet (until sent), one
// relayed packet in transit, and the finally delivered packet. The slab
// stride starts here so steady-state execution never grows the slab.
constexpr int kSteadyBufferReserve = 4;

}  // namespace

Network::Network(const Topology& topo)
    : topo_(topo),
      slab_stride_(kSteadyBufferReserve),
      buffer_count_(as_size(topo.processor_count()), 0),
      slab_id_(as_size(topo.processor_count()) *
               as_size(kSteadyBufferReserve)),
      slab_source_(slab_id_.size()),
      slab_destination_(slab_id_.size()),
      slab_size_(slab_id_.size()),
      slab_hops_(slab_id_.size()),
      source_stamp_(as_size(topo.processor_count()), 0),
      coupler_stamp_(as_size(topo.coupler_count()), 0),
      receiver_stamp_(as_size(topo.processor_count()), 0),
      packet_of_source_(as_size(topo.processor_count()), -1),
      source_of_coupler_(as_size(topo.coupler_count()), -1),
      buffer_index_of_source_(as_size(topo.processor_count()), -1),
      in_flight_(as_size(topo.processor_count())) {
  touched_sources_.reserve(as_size(topo.processor_count()));
}

void Network::grow_stride(int new_stride) {
  if (new_stride <= slab_stride_) return;
  const int n = topo_.processor_count();
  std::vector<int>* slabs[] = {&slab_id_, &slab_source_,
                               &slab_destination_, &slab_size_,
                               &slab_hops_};
  for (std::vector<int>* slab : slabs) {
    slab->resize(as_size(n) * as_size(new_stride));
  }
  // Shift occupied prefixes back to front: row p's new start is at or
  // past its old start, so later rows are rehomed before earlier rows
  // could overwrite them, and copy_backward handles the in-row overlap.
  for (int p = n - 1; p > 0; --p) {
    const std::size_t count = as_size(buffer_count_[as_size(p)]);
    if (count == 0) continue;
    const std::size_t old_base = as_size(p) * as_size(slab_stride_);
    const std::size_t new_base = as_size(p) * as_size(new_stride);
    for (std::vector<int>* slab : slabs) {
      int* data = slab->data();
      std::copy_backward(data + old_base, data + old_base + count,
                         data + new_base + count);
    }
  }
  slab_stride_ = new_stride;
}

void Network::reset() {
  std::fill(buffer_count_.begin(), buffer_count_.end(), 0);
  packet_count_ = 0;
  stats_ = NetworkStats{};
  failure_.clear();
}

void Network::load_permutation_traffic(const Permutation& pi) {
  POPS_CHECK(pi.size() == topo_.processor_count(),
             "permutation size does not match the topology");
  // Writes the slab rows directly: one packet per processor always
  // fits the stride (>= 1), sources are the loop variable, and a
  // Permutation's images are in range by construction, so the
  // per-packet range checks of load_packet would be dead.
  const int n = pi.size();
  const std::size_t stride = as_size(slab_stride_);
  int* id = slab_id_.data();
  int* source_field = slab_source_.data();
  int* destination = slab_destination_.data();
  int* size = slab_size_.data();
  int* hops = slab_hops_.data();
  for (int source = 0; source < n; ++source) {
    const std::size_t at = as_size(source) * stride;
    id[at] = source;
    source_field[at] = source;
    destination[at] = pi(source);
    size[at] = 1;
    hops[at] = 0;
  }
  std::fill(buffer_count_.begin(), buffer_count_.end(), 1);
  packet_count_ = n;
  failure_.clear();
}

void Network::load_packet(Packet packet) {
  POPS_CHECK(packet.source >= 0 &&
                 packet.source < topo_.processor_count(),
             "load_packet: source out of range");
  POPS_CHECK(packet.destination >= -1 &&
                 packet.destination < topo_.processor_count(),
             "load_packet: destination out of range");
  const int count = buffer_count_[as_size(packet.source)];
  if (count == slab_stride_) grow_stride(2 * slab_stride_);
  const std::size_t at =
      as_size(packet.source) * as_size(slab_stride_) + as_size(count);
  slab_id_[at] = packet.id;
  slab_source_[at] = packet.source;
  slab_destination_[at] = packet.destination;
  slab_size_[at] = packet.size;
  slab_hops_[at] = packet.hops;
  buffer_count_[as_size(packet.source)] = count + 1;
  ++packet_count_;
}

bool Network::execute(const std::vector<SlotPlan>& slots) {
  ScopedAllocationBan ban("Network::execute", steady_banned_);
  for (const SlotPlan& slot : slots) {
    if (!execute_slot(slot)) return false;
  }
  return true;
}

bool Network::execute(const FlatSchedule& schedule) {
  ScopedAllocationBan ban("Network::execute", steady_banned_);
  for (int s = 0; s < schedule.slot_count(); ++s) {
    if (!execute_slot(schedule.slot(s))) return false;
  }
  return true;
}

bool Network::execute_slot(Span<const Transmission> transmissions) {
  if (!ok()) return false;
  const long long slot_index = stats_.slots_executed;
  const int n = topo_.processor_count();
  ++epoch_;
  touched_sources_.clear();
  long long busy_couplers = 0;

  // --- Validation pass: nothing is moved until the whole slot checks
  // out against the optical model. Range checks are fused in, so the
  // slot iterates `transmissions` twice in total (validate, commit).
  for (const Transmission& t : transmissions) {
    if (t.source < 0 || t.source >= n) {
      return fail("slot ", slot_index, ": source processor ", t.source,
                  " out of range");
    }
    if (t.destination < 0 || t.destination >= n) {
      return fail("slot ", slot_index, ": destination processor ",
                  t.destination, " out of range");
    }
    const int src_group = topo_.group_of(t.source);
    const int dst_group = topo_.group_of(t.destination);
    const int coupler = topo_.coupler(dst_group, src_group);

    // One packet per transmitting processor (multicast onto several
    // couplers is the same packet on each).
    if (source_stamp_[as_size(t.source)] != epoch_) {
      source_stamp_[as_size(t.source)] = epoch_;
      packet_of_source_[as_size(t.source)] = t.packet;
      touched_sources_.push_back(t.source);
    } else if (packet_of_source_[as_size(t.source)] != t.packet) {
      return fail("slot ", slot_index, ": processor ", t.source,
                  " transmits two different packets (",
                  packet_of_source_[as_size(t.source)], " and ", t.packet,
                  ")");
    }
    // One transmitter per coupler.
    if (coupler_stamp_[as_size(coupler)] != epoch_) {
      coupler_stamp_[as_size(coupler)] = epoch_;
      source_of_coupler_[as_size(coupler)] = t.source;
      ++busy_couplers;
    } else if (source_of_coupler_[as_size(coupler)] != t.source) {
      return fail("slot ", slot_index, ": coupler c(", dst_group, ",",
                  src_group, ") oversubscribed by processors ",
                  source_of_coupler_[as_size(coupler)], " and ", t.source);
    }
    // One tuned coupler per receiver.
    if (receiver_stamp_[as_size(t.destination)] == epoch_) {
      return fail("slot ", slot_index, ": processor ", t.destination,
                  " tunes to more than one coupler");
    }
    receiver_stamp_[as_size(t.destination)] = epoch_;
  }

  // Resolve each transmitting processor's packet in its slab row.
  const int* slab_id = slab_id_.data();
  for (const int source : touched_sources_) {
    const int count = buffer_count_[as_size(source)];
    const int packet_id = packet_of_source_[as_size(source)];
    if (packet_id == -1) {
      if (count != 1) {
        return fail("slot ", slot_index, ": processor ", source,
                    " asked to send 'any' packet but holds ", count);
      }
      buffer_index_of_source_[as_size(source)] = 0;
      continue;
    }
    const int* id = slab_id + as_size(source) * as_size(slab_stride_);
    int found = count;
    for (int i = 0; i < count; ++i) {
      if (id[i] == packet_id) {
        found = i;
        break;
      }
    }
    if (found == count) {
      return fail("slot ", slot_index, ": processor ", source,
                  " does not hold packet ", packet_id);
    }
    buffer_index_of_source_[as_size(source)] = found;
  }

  // --- Commit pass: withdraw every transmitted packet (swap-and-pop
  // with the row's last packet — buffer order carries no semantics),
  // then deliver one copy per tuned receiver. ---
  for (const int source : touched_sources_) {
    const std::size_t base =
        as_size(source) * as_size(slab_stride_);
    const std::size_t at =
        base + as_size(buffer_index_of_source_[as_size(source)]);
    in_flight_[as_size(source)] =
        Packet{slab_id_[at], slab_source_[at], slab_destination_[at],
               slab_size_[at], slab_hops_[at]};
    const int last = buffer_count_[as_size(source)] - 1;
    const std::size_t back = base + as_size(last);
    slab_id_[at] = slab_id_[back];
    slab_source_[at] = slab_source_[back];
    slab_destination_[at] = slab_destination_[back];
    slab_size_[at] = slab_size_[back];
    slab_hops_[at] = slab_hops_[back];
    buffer_count_[as_size(source)] = last;
    --packet_count_;
  }
  for (const Transmission& t : transmissions) {
    const Packet& packet = in_flight_[as_size(t.source)];
    const int count = buffer_count_[as_size(t.destination)];
    if (count == slab_stride_) grow_stride(2 * slab_stride_);
    const std::size_t at =
        as_size(t.destination) * as_size(slab_stride_) + as_size(count);
    slab_id_[at] = packet.id;
    slab_source_[at] = packet.source;
    slab_destination_[at] = packet.destination;
    slab_size_[at] = packet.size;
    slab_hops_[at] = packet.hops + 1;
    buffer_count_[as_size(t.destination)] = count + 1;
    ++packet_count_;
    ++stats_.packets_moved;
  }

  stats_.slots_executed += 1;
  stats_.coupler_slots_busy += busy_couplers;
  stats_.coupler_slot_capacity += topo_.coupler_count();
  return true;
}

bool Network::all_delivered() const {
  const int* destination = slab_destination_.data();
  for (int p = 0; p < topo_.processor_count(); ++p) {
    const int* row = destination + as_size(p) * as_size(slab_stride_);
    const int count = buffer_count_[as_size(p)];
    for (int i = 0; i < count; ++i) {
      if (row[i] != p) return false;
    }
  }
  return true;
}

std::size_t Network::scratch_capacity() const {
  return buffer_count_.capacity() + slab_id_.capacity() +
         slab_source_.capacity() + slab_destination_.capacity() +
         slab_size_.capacity() + slab_hops_.capacity() +
         source_stamp_.capacity() + coupler_stamp_.capacity() +
         receiver_stamp_.capacity() + packet_of_source_.capacity() +
         source_of_coupler_.capacity() +
         buffer_index_of_source_.capacity() + in_flight_.capacity() +
         touched_sources_.capacity();
}

void Network::reserve_buffers(int per_processor) {
  POPS_CHECK(per_processor >= 0,
             "reserve_buffers needs a nonnegative capacity");
  grow_stride(per_processor);
}

}  // namespace pops
