// Permutations of [0, n) — the traffic model of the paper.
#pragma once

#include <string>
#include <vector>

#include "support/check.h"
#include "support/prng.h"

namespace pops {

/// An immutable permutation pi of {0, ..., n-1}; pi(i) is the
/// destination of the packet held by processor i.
class Permutation {
 public:
  /// Validates that `images` is a bijection.
  explicit Permutation(std::vector<int> images);

  static Permutation identity(int n);
  static Permutation random(int n, Rng& rng);
  /// Uniform random permutation without fixed points. Requires n >= 2.
  static Permutation random_derangement(int n, Rng& rng);

  int size() const { return static_cast<int>(images_.size()); }
  int operator()(int i) const { return images_[as_size(i)]; }
  const std::vector<int>& images() const { return images_; }

  Permutation inverse() const;
  bool is_identity() const;
  bool is_derangement() const;

  /// Cycle notation, fixed points included: "(0 5 6 3 2 7 8 4)(1)".
  std::string to_string() const;

 private:
  std::vector<int> images_;
};

}  // namespace pops
