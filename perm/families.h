// Structured permutation families used by the experiment tables.
#pragma once

#include "perm/permutation.h"

namespace pops {

/// i -> n - 1 - i. Adversarial for direct routing: it concentrates
/// whole groups onto single group pairs.
Permutation vector_reversal(int n);

/// On POPS(d, g): processor (group, index) -> (group + shift mod g,
/// index). With shift != 0 this is the worst case for direct routing
/// (all d packets of a group cross the same coupler), while Theorem 2
/// stays at its flat bound.
Permutation group_rotation(int d, int g, int shift);

}  // namespace pops
