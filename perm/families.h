// Structured permutation families used by the experiment tables.
#pragma once

#include "perm/permutation.h"

namespace pops {

/// i -> n - 1 - i. Adversarial for direct routing: it concentrates
/// whole groups onto single group pairs.
Permutation vector_reversal(int n);

/// On POPS(d, g): processor (group, index) -> (group + shift mod g,
/// index). With shift != 0 this is the worst case for direct routing
/// (all d packets of a group cross the same coupler), while Theorem 2
/// stays at its flat bound.
Permutation group_rotation(int d, int g, int shift);

/// i -> (i + shift) mod n (any shift, negative included).
Permutation cyclic_shift(int n, int shift);

/// Group-block permutation on POPS(d, g): group j maps as a block onto
/// group sigma(j), with the packets of group j rearranged inside the
/// target block by within[j] (a permutation of the d in-group
/// indices). Processor (j, i) -> (sigma(j), within[j](i)). This is the
/// instance family of Propositions 2 (sigma moving) and 3 (sigma =
/// identity).
Permutation group_block(int d, int g, const Permutation& sigma,
                        const std::vector<Permutation>& within);

}  // namespace pops
