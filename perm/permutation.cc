#include "perm/permutation.h"

#include <numeric>
#include <sstream>

namespace pops {

Permutation::Permutation(std::vector<int> images)
    : images_(std::move(images)) {
  std::vector<bool> seen(images_.size(), false);
  for (const int image : images_) {
    POPS_CHECK(image >= 0 && image < size(),
               "Permutation image out of range");
    POPS_CHECK(!seen[as_size(image)], "Permutation repeats an image");
    seen[as_size(image)] = true;
  }
}

Permutation Permutation::identity(int n) {
  POPS_CHECK(n >= 0, "Permutation::identity with negative size");
  std::vector<int> images(as_size(n));
  std::iota(images.begin(), images.end(), 0);
  return Permutation(std::move(images));
}

Permutation Permutation::random(int n, Rng& rng) {
  std::vector<int> images(as_size(n));
  std::iota(images.begin(), images.end(), 0);
  rng.shuffle(images);
  return Permutation(std::move(images));
}

Permutation Permutation::random_derangement(int n, Rng& rng) {
  POPS_CHECK(n >= 2, "no derangement exists for n < 2");
  // Rejection sampling keeps the distribution uniform; the acceptance
  // probability tends to 1/e, so a few dozen tries suffice in practice.
  for (int attempt = 0; attempt < 1024; ++attempt) {
    Permutation candidate = random(n, rng);
    if (candidate.is_derangement()) return candidate;
  }
  POPS_CHECK(false, "random_derangement failed to converge");
  return identity(n);
}

Permutation Permutation::inverse() const {
  std::vector<int> images(images_.size());
  for (int i = 0; i < size(); ++i) {
    images[as_size(images_[as_size(i)])] = i;
  }
  return Permutation(std::move(images));
}

bool Permutation::is_identity() const {
  for (int i = 0; i < size(); ++i) {
    if (images_[as_size(i)] != i) return false;
  }
  return true;
}

bool Permutation::is_derangement() const {
  for (int i = 0; i < size(); ++i) {
    if (images_[as_size(i)] == i) return false;
  }
  return size() > 0;
}

std::string Permutation::to_string() const {
  std::ostringstream out;
  std::vector<bool> visited(images_.size(), false);
  for (int start = 0; start < size(); ++start) {
    if (visited[as_size(start)]) continue;
    out << '(';
    int at = start;
    bool first = true;
    while (!visited[as_size(at)]) {
      visited[as_size(at)] = true;
      if (!first) out << ' ';
      out << at;
      first = false;
      at = images_[as_size(at)];
    }
    out << ')';
  }
  return out.str();
}

}  // namespace pops
