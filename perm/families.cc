#include "perm/families.h"

namespace pops {

Permutation vector_reversal(int n) {
  std::vector<int> images(as_size(n));
  for (int i = 0; i < n; ++i) {
    images[as_size(i)] = n - 1 - i;
  }
  return Permutation(std::move(images));
}

Permutation group_rotation(int d, int g, int shift) {
  POPS_CHECK(d >= 1 && g >= 1, "group_rotation needs d, g >= 1");
  const int n = d * g;
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    const int group = p / d;
    const int index = p % d;
    const int target = ((group + shift) % g + g) % g;
    images[as_size(p)] = target * d + index;
  }
  return Permutation(std::move(images));
}

Permutation cyclic_shift(int n, int shift) {
  POPS_CHECK(n >= 1, "cyclic_shift needs n >= 1");
  std::vector<int> images(as_size(n));
  for (int i = 0; i < n; ++i) {
    images[as_size(i)] = ((i + shift) % n + n) % n;
  }
  return Permutation(std::move(images));
}

Permutation group_block(int d, int g, const Permutation& sigma,
                        const std::vector<Permutation>& within) {
  POPS_CHECK(d >= 1 && g >= 1, "group_block needs d, g >= 1");
  POPS_CHECK(sigma.size() == g, "group_block: sigma must permute the groups");
  POPS_CHECK(as_int(within.size()) == g,
             "group_block: one within-group permutation per group");
  const int n = d * g;
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    const int group = p / d;
    const int index = p % d;
    const Permutation& inner = within[as_size(group)];
    POPS_CHECK(inner.size() == d,
               "group_block: within[j] must permute the d in-group indices");
    images[as_size(p)] = sigma(group) * d + inner(index);
  }
  return Permutation(std::move(images));
}

}  // namespace pops
