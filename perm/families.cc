#include "perm/families.h"

namespace pops {

Permutation vector_reversal(int n) {
  std::vector<int> images(as_size(n));
  for (int i = 0; i < n; ++i) {
    images[as_size(i)] = n - 1 - i;
  }
  return Permutation(std::move(images));
}

Permutation group_rotation(int d, int g, int shift) {
  POPS_CHECK(d >= 1 && g >= 1, "group_rotation needs d, g >= 1");
  const int n = d * g;
  std::vector<int> images(as_size(n));
  for (int p = 0; p < n; ++p) {
    const int group = p / d;
    const int index = p % d;
    const int target = ((group + shift) % g + g) % g;
    images[as_size(p)] = target * d + index;
  }
  return Permutation(std::move(images));
}

}  // namespace pops
