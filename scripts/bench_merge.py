#!/usr/bin/env python3
"""Validate and merge per-bench google-benchmark JSON into one snapshot.

Usage:
  bench_merge.py --out OUT.json --tier TIER [--context KEY=VALUE ...] JSON_DIR

Reads every ``*.json`` in JSON_DIR (one file per wired bench, written by
``--benchmark_out``), validates it, and writes the merged snapshot::

    {
      "schema": 2,
      "tier": "<tier>",
      "context": {"cpu": ..., "library": ..., ...},
      "benches": {"<bench name>": <google-benchmark json>, ...}
    }

Validation is strict on purpose — a malformed or counter-less bench
output must fail the merge loudly instead of silently producing an
empty or unusable snapshot that the regression gate (bench_diff.py)
would then vacuously pass:

  * every file must parse as a JSON object with a non-empty
    ``benchmarks`` array;
  * every benchmark entry must carry a name, a numeric ``real_time``,
    and at least one throughput counter (``items_per_second`` or a
    ``*_per_sec`` / ``*_per_second`` user counter) — an entry with no
    throughput counter cannot feed the perf trajectory and means the
    bench forgot SetItemsProcessed()/a rate counter.

Exit codes: 0 merged, 1 validation failure, 2 usage error.
"""

import argparse
import json
import pathlib
import sys


def is_throughput_counter(key):
    return (key == "items_per_second" or key.endswith("_per_sec")
            or key.endswith("_per_second"))


def validate_bench_doc(name, doc, errors):
    """Appends human-readable problems with one bench's JSON to errors."""
    if not isinstance(doc, dict):
        errors.append(f"{name}: top level is not a JSON object")
        return
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append(
            f"{name}: no 'benchmarks' array (or it is empty) — the bench "
            "ran nothing; check its registration")
        return
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or not isinstance(
                entry.get("name"), str):
            errors.append(f"{name}: benchmarks[{index}] has no name")
            continue
        entry_name = entry["name"]
        if not isinstance(entry.get("real_time"), (int, float)):
            errors.append(
                f"{name}: {entry_name} has no numeric real_time")
        counters = [
            key for key, value in entry.items()
            if is_throughput_counter(key) and isinstance(value, (int, float))
        ]
        if not counters:
            errors.append(
                f"{name}: {entry_name} has no throughput counter "
                "(items_per_second or *_per_sec) — add "
                "SetItemsProcessed() or a kIsRate counter so the "
                "regression gate can see it")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--out", required=True, help="merged snapshot path")
    parser.add_argument("--tier", required=True,
                        help="tier name recorded in the snapshot")
    parser.add_argument("--context", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="machine/compiler metadata entries")
    parser.add_argument("json_dir", help="directory of per-bench *.json")
    args = parser.parse_args(argv)

    json_dir = pathlib.Path(args.json_dir)
    files = sorted(json_dir.glob("*.json"))
    if not files:
        print(f"bench_merge: no per-bench JSON in {json_dir}",
              file=sys.stderr)
        return 1

    context = {}
    for item in args.context:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"bench_merge: --context needs KEY=VALUE, got '{item}'",
                  file=sys.stderr)
            return 2
        context[key] = value

    errors = []
    benches = {}
    for path in files:
        name = path.stem
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            errors.append(f"{name}: malformed JSON ({err})")
            continue
        validate_bench_doc(name, doc, errors)
        benches[name] = doc

    if errors:
        print("bench_merge: refusing to merge invalid bench output:",
              file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1

    # The benchmark library is part of a snapshot's identity (shim
    # timings and real-library timings are not comparable one-to-one);
    # the shim stamps context.library, the real library does not.
    libraries = {
        bench.get("context", {}).get("library", "google-benchmark")
        for bench in benches.values()
    }
    context.setdefault("library", "+".join(sorted(libraries)))

    merged = {
        "schema": 2,
        "tier": args.tier,
        "context": context,
        "benches": benches,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
    print(f"bench_merge: wrote {out} ({len(benches)} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
