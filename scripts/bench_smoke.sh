#!/usr/bin/env bash
# Smoke-runs every wired bench binary in a build tree with
# --benchmark_min_time=0.01x (each table row is backed by a verified
# schedule, so any routing regression fails the run).
#
# The bench list comes from the manifest bench/CMakeLists.txt writes at
# configure time (<build-dir>/bench/wired_benches.txt), so a wired
# bench whose binary is missing is a hard failure, not a silently
# shorter loop. Without a manifest (older build tree) the script falls
# back to globbing and requires at least MIN_BENCHES binaries.
#
# Usage: scripts/bench_smoke.sh <build-dir> [table-output-dir]
set -euo pipefail

build_dir="${1:?usage: bench_smoke.sh <build-dir> [table-output-dir]}"
table_dir="${2:-}"
min_benches="${MIN_BENCHES:-4}"
manifest="$build_dir/bench/wired_benches.txt"

[ -n "$table_dir" ] && mkdir -p "$table_dir"

run_bench() {
  local bench="$1"
  local name
  name="$(basename "$bench")"
  echo "::group::${name}"
  if [ -n "$table_dir" ]; then
    "$bench" --benchmark_min_time=0.01x | tee "$table_dir/${name}.txt"
  else
    "$bench" --benchmark_min_time=0.01x
  fi
  echo "::endgroup::"
}

ran=0
if [ -f "$manifest" ]; then
  while IFS= read -r name; do
    [ -n "$name" ] || continue
    bench="$build_dir/bench/$name"
    if [ ! -x "$bench" ]; then
      echo "wired bench $name has no executable at $bench" >&2
      exit 1
    fi
    run_bench "$bench"
    ran=$((ran + 1))
  done < "$manifest"
  echo "ran ${ran} wired bench binaries (manifest)"
  test "$ran" -ge 1
else
  for bench in "$build_dir"/bench/bench_*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    run_bench "$bench"
    ran=$((ran + 1))
  done
  echo "ran ${ran} bench binaries (glob fallback)"
  test "$ran" -ge "$min_benches"
fi
