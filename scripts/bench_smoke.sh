#!/usr/bin/env bash
# Smoke-runs every wired bench binary in a build tree with
# --benchmark_min_time=0.01x (each table row is backed by a verified
# schedule, so any routing regression fails the run).
#
# The bench list comes from the manifest bench/CMakeLists.txt writes at
# configure time (<build-dir>/bench/wired_benches.txt), so a wired
# bench whose binary is missing is a hard failure, not a silently
# shorter loop. Without a manifest (older build tree) the script falls
# back to globbing and requires at least MIN_BENCHES binaries.
#
# When a table-output-dir is given, every run additionally emits
# google-benchmark JSON (--benchmark_out, supported by the real
# library >= 1.8 and by the bundled shim) and the per-bench files are
# validated and merged into <table-output-dir>/BENCH_smoke.json by
# scripts/bench_merge.py — malformed or counter-less bench output
# fails the merge with a clear error instead of silently producing an
# empty snapshot. Tiered snapshots (the committed BENCH_<tier>.json
# trajectory) come from scripts/bench_tier.sh instead; the smoke run
# stays on the default `fresh` tier unless POPS_BENCH_TIER overrides.
#
# Usage: scripts/bench_smoke.sh <build-dir> [table-output-dir]
set -euo pipefail

build_dir="${1:?usage: bench_smoke.sh <build-dir> [table-output-dir]}"
table_dir="${2:-}"
min_benches="${MIN_BENCHES:-4}"
manifest="$build_dir/bench/wired_benches.txt"

if [ -n "$table_dir" ]; then
  mkdir -p "$table_dir/json"
  # A reused table dir must not leak stale numbers into the uploaded
  # artifacts: not via leftover per-bench files, and not via a previous
  # run's merged JSON surviving an aborted run (CI uploads with
  # `if: always()`).
  rm -f "$table_dir/json"/*.json "$table_dir"/*.txt \
        "$table_dir/BENCH_smoke.json"
fi

run_bench() {
  local bench="$1"
  local name
  name="$(basename "$bench")"
  echo "::group::${name}"
  if [ -n "$table_dir" ]; then
    "$bench" --benchmark_min_time=0.01x \
             --benchmark_out="$table_dir/json/${name}.json" \
             --benchmark_out_format=json | tee "$table_dir/${name}.txt"
  else
    "$bench" --benchmark_min_time=0.01x
  fi
  echo "::endgroup::"
}

# Validates and merges the per-bench JSON into
# <table-dir>/BENCH_smoke.json via scripts/bench_merge.py: every file
# must parse, contain a non-empty benchmarks array, and carry a
# throughput counter per entry — a schema-less concatenation used to
# slip empty/broken bench output into the uploaded artifact silently.
merge_json() {
  local out="$table_dir/BENCH_smoke.json"
  python3 "$(dirname "$0")/bench_merge.py" \
    --out "$out" \
    --tier "${POPS_BENCH_TIER:-fresh}" \
    "$table_dir/json"
  # The per-bench files are fully contained in the merged artifact;
  # dropping them keeps the uploaded tables dir free of intermediates.
  rm -rf "$table_dir/json"
}

ran=0
if [ -f "$manifest" ]; then
  while IFS= read -r name; do
    [ -n "$name" ] || continue
    bench="$build_dir/bench/$name"
    if [ ! -x "$bench" ]; then
      echo "wired bench $name has no executable at $bench" >&2
      exit 1
    fi
    run_bench "$bench"
    ran=$((ran + 1))
  done < "$manifest"
  echo "ran ${ran} wired bench binaries (manifest)"
  test "$ran" -ge 1
else
  for bench in "$build_dir"/bench/bench_*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    run_bench "$bench"
    ran=$((ran + 1))
  done
  echo "ran ${ran} bench binaries (glob fallback)"
  test "$ran" -ge "$min_benches"
fi

if [ -n "$table_dir" ]; then
  merge_json
fi
