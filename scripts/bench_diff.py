#!/usr/bin/env python3
"""Diff two merged benchmark snapshots and gate on throughput regressions.

Usage:
  bench_diff.py BASELINE.json CURRENT.json
                [--threshold 0.15]
                [--counter-threshold NAME=FRACTION ...]
                [--on-host-mismatch {fail,warn}]

Compares every throughput counter (``items_per_second`` and
``*_per_sec`` / ``*_per_second`` user counters — higher is better) of
every benchmark case in BASELINE against CURRENT:

  * a counter more than THRESHOLD slower than baseline is a regression
    (default 15%; per-counter overrides via --counter-threshold, e.g.
    ``--counter-threshold demands_per_sec=0.30``);
  * a bench, case, or counter present in baseline but missing from
    current is a structural failure (a silently dropped counter would
    hide regressions forever) — refresh the snapshot deliberately to
    remove one;
  * benches/cases/counters only in CURRENT are reported as new and
    pass (a new bench needs no baseline yet).

Snapshots carry machine/library metadata. When the baseline was taken
on different hardware or a different benchmark library, absolute
numbers are not comparable; ``--on-host-mismatch warn`` (CI uses this)
downgrades *numeric* regressions to warnings in that case, while
structural failures and tier mismatches still fail. Refreshing the
snapshot on gate hardware re-arms the hard gate automatically.

Exit codes: 0 pass, 1 regression/structural failure, 2 usage/IO error.
"""

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.15

# Context keys that define comparability of absolute numbers.
HOST_IDENTITY_KEYS = ("cpu", "library")


def is_throughput_counter(key):
    return (key == "items_per_second" or key.endswith("_per_sec")
            or key.endswith("_per_second"))


def load_snapshot(path):
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "benches" not in doc:
        raise ValueError(f"{path}: not a merged snapshot (no 'benches')")
    return doc


def throughput_counters(bench_doc):
    """{case name: {counter: value}} for one bench's google-benchmark doc."""
    cases = {}
    for entry in bench_doc.get("benchmarks", []):
        if not isinstance(entry, dict):
            continue
        # Skip statistics rows (mean/median/stddev) the real library
        # emits with --benchmark_repetitions; compare raw runs only.
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name")
        if not isinstance(name, str):
            continue
        counters = {
            key: float(value)
            for key, value in entry.items()
            if is_throughput_counter(key) and isinstance(value, (int, float))
        }
        if counters:
            cases[name] = counters
    return cases


def host_identity(doc):
    context = doc.get("context", {})
    return {key: context.get(key, "") for key in HOST_IDENTITY_KEYS}


class Report:
    def __init__(self):
        self.rows = []        # (status, case, counter, detail)
        self.regressions = []
        self.structural = []
        self.new_items = []

    def row(self, status, case, counter, detail):
        self.rows.append((status, case, counter, detail))


def compare(baseline, current, threshold, overrides):
    """Compares two snapshot docs; returns a Report. Raises ValueError on
    tier mismatch (snapshots of different tiers are never comparable)."""
    base_tier = baseline.get("tier")
    cur_tier = current.get("tier")
    if base_tier != cur_tier:
        raise ValueError(
            f"tier mismatch: baseline is '{base_tier}', current is "
            f"'{cur_tier}' — run the diff within one tier")

    report = Report()
    base_benches = baseline["benches"]
    cur_benches = current["benches"]

    for bench_name in sorted(base_benches):
        if bench_name not in cur_benches:
            report.structural.append(
                f"bench '{bench_name}' present in baseline but missing "
                "from current run")
            continue
        base_cases = throughput_counters(base_benches[bench_name])
        cur_cases = throughput_counters(cur_benches[bench_name])
        for case in sorted(base_cases):
            qualified = f"{bench_name}:{case}"
            if case not in cur_cases:
                report.structural.append(
                    f"case '{qualified}' disappeared from current run")
                continue
            for counter, base_value in sorted(base_cases[case].items()):
                cur_value = cur_cases[case].get(counter)
                if cur_value is None:
                    report.structural.append(
                        f"counter '{counter}' of '{qualified}' missing "
                        "from current run")
                    continue
                if base_value <= 0:
                    report.row("skip", qualified, counter,
                               "baseline value is zero")
                    continue
                change = cur_value / base_value - 1.0
                limit = overrides.get(counter, threshold)
                detail = (f"{base_value:.4g} -> {cur_value:.4g} "
                          f"({change:+.1%}, limit -{limit:.0%})")
                if change < -limit:
                    report.regressions.append(
                        f"{qualified} {counter}: {detail}")
                    report.row("REGRESSION", qualified, counter, detail)
                else:
                    report.row("ok", qualified, counter, detail)
            for counter in sorted(
                    set(cur_cases[case]) - set(base_cases[case])):
                report.new_items.append(
                    f"counter '{counter}' of '{qualified}'")
        for case in sorted(set(cur_cases) - set(base_cases)):
            report.new_items.append(f"case '{bench_name}:{case}'")
    for bench_name in sorted(set(cur_benches) - set(base_benches)):
        report.new_items.append(f"bench '{bench_name}'")
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="default allowed fractional slowdown "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--counter-threshold", action="append", default=[],
                        metavar="NAME=FRACTION",
                        help="per-counter threshold override")
    parser.add_argument("--on-host-mismatch", choices=("fail", "warn"),
                        default="fail",
                        help="when snapshot hosts/libraries differ, "
                             "'warn' downgrades numeric regressions to "
                             "warnings (structural failures still fail)")
    args = parser.parse_args(argv)

    overrides = {}
    for item in args.counter_threshold:
        name, sep, value = item.partition("=")
        if not sep:
            parser.error(f"--counter-threshold needs NAME=FRACTION, "
                         f"got '{item}'")
        try:
            overrides[name] = float(value)
        except ValueError:
            parser.error(f"--counter-threshold fraction not a number: "
                         f"'{item}'")

    try:
        baseline = load_snapshot(args.baseline)
        current = load_snapshot(args.current)
        report = compare(baseline, current, args.threshold, overrides)
    except (OSError, json.JSONDecodeError, ValueError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    for status, case, counter, detail in report.rows:
        if status != "ok":
            print(f"  [{status}] {case} {counter}: {detail}")
    ok_count = sum(1 for row in report.rows if row[0] == "ok")
    print(f"bench_diff: {ok_count} counters within threshold")
    for item in report.new_items:
        print(f"  [new, no baseline] {item}")

    hosts_match = host_identity(baseline) == host_identity(current)
    if not hosts_match:
        print("bench_diff: WARNING baseline and current snapshots come "
              "from different hosts/libraries:\n"
              f"  baseline: {host_identity(baseline)}\n"
              f"  current:  {host_identity(current)}")

    failed = False
    for item in report.structural:
        print(f"bench_diff: FAIL (structural) {item}", file=sys.stderr)
        failed = True
    if report.regressions:
        downgrade = args.on_host_mismatch == "warn" and not hosts_match
        label = "WARN (host mismatch)" if downgrade else "FAIL"
        for item in report.regressions:
            print(f"bench_diff: {label} regression: {item}",
                  file=sys.stderr)
        if not downgrade:
            failed = True
        else:
            print("bench_diff: regressions not gating because the "
                  "baseline host differs; refresh the snapshot on gate "
                  "hardware to re-arm the hard gate", file=sys.stderr)

    if failed:
        return 1
    print("bench_diff: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
