#!/usr/bin/env bash
# Runs the whole wired-bench manifest at a named tier and writes the
# merged BENCH_<tier>.json snapshot with machine/compiler metadata —
# the committed perf-trajectory artifact the regression gate
# (scripts/bench_diff.py, .github/workflows/benchmarks.yml) diffs
# against.
#
#   scripts/bench_tier.sh <build-dir> <tier> [out-dir]
#
# <tier> is a bench/tiers.h name (fresh/small/medium/large); every
# bench is run with POPS_BENCH_TIER=<tier> so tables and Args grids all
# come from that tier's registry entry. <out-dir> defaults to the repo
# root, i.e. the default invocation refreshes the committed snapshot:
#
#   scripts/bench_tier.sh build small        # refresh BENCH_small.json
#   cmake --build build --target bench_tier  # same, tier from cache var
#
# Each bench's full console output (tier line + verified tables +
# timings) is kept in <out-dir>/bench-tier-logs/ next to the snapshot
# when out-dir is not the repo root; against the repo root only the
# snapshot is written, so a refresh never litters the tree.
#
# Benchmark runtimes use the library's default min_time; export
# POPS_BENCH_MIN_TIME to override (passed as --benchmark_min_time).
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:?usage: bench_tier.sh <build-dir> <tier> [out-dir]}"
tier="${2:?usage: bench_tier.sh <build-dir> <tier> [out-dir]}"
out_dir="${3:-.}"

case "$tier" in
  fresh|small|medium|large) ;;
  *)
    echo "bench_tier.sh: unknown tier '$tier'" \
         "(known: fresh, small, medium, large)" >&2
    exit 2
    ;;
esac

manifest="$build_dir/bench/wired_benches.txt"
if [ ! -f "$manifest" ]; then
  echo "bench_tier.sh: no wired-bench manifest at $manifest;" \
       "configure and build first (cmake -B $build_dir -S . &&" \
       "cmake --build $build_dir)" >&2
  exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

log_dir=""
if [ "$out_dir" != "." ]; then
  log_dir="$out_dir/bench-tier-logs"
  mkdir -p "$log_dir"
  rm -f "$log_dir"/*.txt
fi

export POPS_BENCH_TIER="$tier"
ran=0
while IFS= read -r name; do
  [ -n "$name" ] || continue
  bench="$build_dir/bench/$name"
  if [ ! -x "$bench" ]; then
    echo "bench_tier.sh: wired bench $name has no executable at $bench" >&2
    exit 1
  fi
  echo "::group::${name}@${tier}"
  if [ -n "$log_dir" ]; then
    "$bench" --benchmark_out="$work/${name}.json" \
             --benchmark_out_format=json \
             ${POPS_BENCH_MIN_TIME:+--benchmark_min_time=$POPS_BENCH_MIN_TIME} \
        | tee "$log_dir/${name}.txt"
  else
    "$bench" --benchmark_out="$work/${name}.json" \
             --benchmark_out_format=json \
             ${POPS_BENCH_MIN_TIME:+--benchmark_min_time=$POPS_BENCH_MIN_TIME}
  fi
  echo "::endgroup::"
  ran=$((ran + 1))
done < "$manifest"
test "$ran" -ge 1

# Machine/compiler identity: what bench_diff.py uses to decide whether
# absolute numbers are comparable, and what a human needs to read a
# committed snapshot.
compiler_path="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
                 "$build_dir/CMakeCache.txt" 2>/dev/null | head -n 1)"
compiler="unknown"
if [ -n "$compiler_path" ] && [ -x "$compiler_path" ]; then
  compiler="$("$compiler_path" --version 2>/dev/null | head -n 1)"
fi
cpu="$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null \
       | head -n 1)"
[ -n "$cpu" ] || cpu="$(uname -m)"
git_rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

mkdir -p "$out_dir"
python3 scripts/bench_merge.py \
  --out "$out_dir/BENCH_${tier}.json" \
  --tier "$tier" \
  --context "host=$(uname -sm)" \
  --context "cpu=$cpu" \
  --context "nproc=$(nproc)" \
  --context "compiler=$compiler" \
  --context "git=$git_rev" \
  --context "date=$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  "$work"
