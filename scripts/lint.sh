#!/usr/bin/env bash
# Static gate for the zero-allocation contract plus a clang-tidy pass.
#
#   scripts/lint.sh [build_dir]
#
# 1. Validates scripts/hot_path_manifest.txt: every line is
#    `hot <path>` or `cold <path>`, every listed file exists, and every
#    library source under the checked directories is listed (both
#    directions — the same check CMake runs at configure time).
# 2. Greps every `hot`-tagged file for heap-allocating idioms with
#    comments stripped: `new`, node-based standard containers,
#    malloc/calloc/realloc, std::function. A line may opt out with a
#    trailing `// lint:allow <reason>` comment.
# 3. Runs clang-tidy (config: .clang-tidy) over the library .cc files
#    using the compile database in the build directory. If clang-tidy
#    is not installed the step is skipped with a notice unless
#    POPS_LINT_REQUIRE_CLANG_TIDY=1 (CI sets this). Set
#    POPS_LINT_SKIP_CLANG_TIDY=1 to skip explicitly (cache hits).
#
# Findings are printed as `file:line: message` (with GitHub
# `::error file=...` annotations when running under CI) and the script
# exits nonzero if anything is found.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
manifest="scripts/hot_path_manifest.txt"
checked_dirs=(graph perm pops routing serve support)
failures=0

error() {  # error <file> <line> <message>
  local file="$1" line="$2" message="$3"
  echo "${file}:${line}: error: ${message}" >&2
  if [[ -n "${GITHUB_ACTIONS:-}" ]]; then
    echo "::error file=${file},line=${line}::${message}"
  fi
  failures=$((failures + 1))
}

# --- 1. manifest validation and completeness -----------------------
if [[ ! -f "${manifest}" ]]; then
  error "${manifest}" 1 "hot-path manifest is missing"
  exit 1
fi

declare -A manifest_tag=()
line_number=0
while IFS= read -r line; do
  line_number=$((line_number + 1))
  [[ -z "${line}" || "${line}" == \#* ]] && continue
  if [[ ! "${line}" =~ ^(hot|cold)\ (.+)$ ]]; then
    error "${manifest}" "${line_number}" \
      "malformed manifest line (want 'hot <path>' or 'cold <path>'): ${line}"
    continue
  fi
  tag="${BASH_REMATCH[1]}"
  path="${BASH_REMATCH[2]}"
  if [[ ! -f "${path}" ]]; then
    error "${manifest}" "${line_number}" \
      "manifest lists nonexistent file: ${path}"
    continue
  fi
  if [[ -n "${manifest_tag[${path}]:-}" ]]; then
    error "${manifest}" "${line_number}" \
      "duplicate manifest entry: ${path}"
    continue
  fi
  manifest_tag["${path}"]="${tag}"
done < "${manifest}"

while IFS= read -r source; do
  source="${source#./}"
  if [[ -z "${manifest_tag[${source}]:-}" ]]; then
    error "${source}" 1 \
      "library source missing from ${manifest}; tag it hot or cold"
  fi
done < <(find "${checked_dirs[@]}" -name '*.cc' -o -name '*.h' | sort)

# --- 2. forbidden-token scan over hot files ------------------------
# Token list mirrors the zero-allocation contract: anything that heap
# allocates per call on the steady path. Comments are stripped first;
# `// lint:allow <reason>` on the original line opts a finding out.
forbidden='\bnew\b|std::(unordered_)?(multi)?(map|set)<|std::list<|std::forward_list<|std::deque<|\b(malloc|calloc|realloc)[[:space:]]*\(|std::function<'

for path in "${!manifest_tag[@]}"; do
  [[ "${manifest_tag[${path}]}" == hot ]] || continue
  # Strip //-comments (the codebase uses no /* */ blocks in sources),
  # then scan. Line numbers survive because sed edits in place per line.
  while IFS=: read -r lineno _; do
    [[ -n "${lineno}" ]] || continue
    original="$(sed -n "${lineno}p" "${path}")"
    if [[ "${original}" == *"lint:allow"* ]]; then
      continue
    fi
    error "${path}" "${lineno}" \
      "heap-allocating idiom in hot-path file (see ${manifest}); annotate '// lint:allow <reason>' if intentional"
  done < <(sed 's|//.*$||' "${path}" | grep -nE "${forbidden}" | cut -d: -f1 | sed 's/$/:/')
done

# --- 3. clang-tidy -------------------------------------------------
if [[ "${POPS_LINT_SKIP_CLANG_TIDY:-0}" == 1 ]]; then
  echo "lint: skipping clang-tidy (POPS_LINT_SKIP_CLANG_TIDY=1)"
elif ! command -v clang-tidy > /dev/null 2>&1; then
  if [[ "${POPS_LINT_REQUIRE_CLANG_TIDY:-0}" == 1 ]]; then
    error "scripts/lint.sh" 1 \
      "clang-tidy is required (POPS_LINT_REQUIRE_CLANG_TIDY=1) but not installed"
  else
    echo "lint: clang-tidy not installed; skipping the tidy pass"
  fi
elif [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  error "scripts/lint.sh" 1 \
    "no compile database at ${build_dir}/compile_commands.json; configure with cmake -B ${build_dir} first"
else
  # Library sources only — the benchmark shim and third-party code are
  # out of scope (HeaderFilterRegex in .clang-tidy matches likewise).
  mapfile -t tidy_sources < <(find "${checked_dirs[@]}" -name '*.cc' | sort)
  if ! clang-tidy -p "${build_dir}" --quiet "${tidy_sources[@]}"; then
    error "scripts/lint.sh" 1 "clang-tidy reported findings (see log above)"
  fi
fi

if [[ "${failures}" -gt 0 ]]; then
  echo "lint: ${failures} finding(s)" >&2
  exit 1
fi
echo "lint: clean"
