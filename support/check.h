// Hard invariant checks for the POPS routing core.
//
// POPS_CHECK is used for conditions that must hold in every build mode:
// a violated check means a broken schedule, an invalid coloring, or a
// caller bug, and the only safe response is to stop. Benchmarks rely on
// this (a bench must never report numbers from a broken run), so the
// checks are never compiled out.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace pops {
namespace detail {

[[noreturn]] inline void check_fail(const char* message, const char* file,
                                    int line) {
  std::fprintf(stderr, "POPS_CHECK failed at %s:%d: %s\n", file, line,
               message);
  std::fflush(stderr);
  std::abort();
}

// String-literal messages resolve to the const char* overload above,
// which performs no heap allocation — a POPS_CHECK firing inside a
// ScopedAllocationBan (support/alloc_guard.h) must report the real
// failure, not trip the guard while constructing its own message.
[[noreturn]] inline void check_fail(const std::string& message,
                                    const char* file, int line) {
  check_fail(message.c_str(), file, line);
}

}  // namespace detail

#define POPS_CHECK(condition, message)                              \
  do {                                                              \
    if (!(condition)) {                                             \
      ::pops::detail::check_fail((message), __FILE__, __LINE__);    \
    }                                                               \
  } while (false)

/// Checked int -> size_t conversion for container indexing. Negative
/// indices are always a caller bug.
inline std::size_t as_size(long long value) {
  POPS_CHECK(value >= 0, "as_size on negative value");
  return static_cast<std::size_t>(value);
}

/// Checked size_t -> int conversion for container sizes fed to the
/// int-based routing APIs and tables.
inline int as_int(std::size_t value) {
  POPS_CHECK(
      value <= static_cast<std::size_t>(std::numeric_limits<int>::max()),
      "as_int on a value that does not fit an int");
  return static_cast<int>(value);
}

}  // namespace pops
