// Small string-formatting helpers shared by the tables and benches.
#pragma once

#include <sstream>
#include <string>

namespace pops {

/// Fixed-point rendering with the given number of decimals ("3.14").
std::string format_double(double value, int decimals);

/// Concatenates all arguments with operator<<.
template <typename... Args>
std::string str_cat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace pops
