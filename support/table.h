// Aligned text tables — the paper-shaped artifact every bench prints.
#pragma once

#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "support/format.h"

namespace pops {

namespace detail {

template <typename T>
std::string table_cell(const T& value) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(value);
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_double(value, 3);
  } else if constexpr (std::is_integral_v<T>) {
    return std::to_string(value);
  } else {
    static_assert(std::is_convertible_v<T, std::string>,
                  "unsupported table cell type");
  }
}

}  // namespace detail

/// Column-aligned table with a header row. Rows may be ragged; short
/// rows are padded with empty cells when printed.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: accepts strings, integers and doubles directly.
  template <typename... Args>
  void add(const Args&... args) {
    add_row({detail::table_cell(args)...});
  }

  int row_count() const { return static_cast<int>(rows_.size()); }

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pops
