// Deterministic pseudo-random number generation.
//
// Every experiment in bench/ and every randomized test seeds an explicit
// Rng so runs are reproducible across machines and standard-library
// versions (std::shuffle and std::uniform_int_distribution are not
// portable across implementations; this generator is).
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"

namespace pops {

/// xoshiro256++ seeded via splitmix64. Fast, tiny state, and good enough
/// statistical quality for shuffles and random regular multigraphs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  int next_below(int bound) {
    POPS_CHECK(bound > 0, "Rng::next_below needs a positive bound");
    // Modulo bias is < 2^-32 for the bounds used here (< 2^31).
    return static_cast<int>(next_u64() %
                            static_cast<std::uint64_t>(bound));
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    POPS_CHECK(lo <= hi, "Rng::uniform_int with empty range");
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (int i = static_cast<int>(values.size()) - 1; i > 0; --i) {
      const int j = next_below(i + 1);
      std::swap(values[as_size(i)], values[as_size(j)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pops
