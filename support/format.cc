#include "support/format.h"

#include <cstdio>

#include "support/check.h"

namespace pops {

std::string format_double(double value, int decimals) {
  POPS_CHECK(decimals >= 0 && decimals <= 17,
             "format_double: decimals out of range");
  char buffer[64];
  const int written =
      std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  POPS_CHECK(written > 0 && written < static_cast<int>(sizeof(buffer)),
             "format_double: value does not fit");
  return std::string(buffer);
}

}  // namespace pops
