// Global operator new/delete replacement for the allocation guard.
// Compiled into pops_core unconditionally; the entire body is inside
// #if POPS_ALLOC_GUARD, so the unguarded build contributes an empty
// translation unit and keeps the toolchain's default allocator.
#include "support/alloc_guard.h"

#if POPS_ALLOC_GUARD

#include <cstdio>
#include <cstdlib>
#include <new>

namespace {

// Plain PODs with constant initializers: thread_local access compiles
// to a TLS offset with no dynamic-init guard, so the hooks stay cheap
// and cannot themselves allocate.
thread_local long long tl_allocations = 0;
thread_local long long tl_deallocations = 0;
thread_local long long tl_bytes_allocated = 0;
thread_local int tl_ban_depth = 0;
thread_local int tl_allow_depth = 0;
thread_local const char* tl_ban_scope = nullptr;

bool ban_active() { return tl_ban_depth > 0 && tl_allow_depth == 0; }

[[noreturn]] void report_banned_allocation(std::size_t size) {
  // Lift the ban before reporting: fprintf may allocate internally and
  // must not recurse back into this handler.
  ++tl_allow_depth;
  std::fprintf(stderr,
               "POPS_ALLOC_GUARD: %zu-byte heap allocation inside banned "
               "scope '%s'\n",
               size, tl_ban_scope != nullptr ? tl_ban_scope : "(unnamed)");
  std::fflush(stderr);
  std::abort();
}

void* guarded_allocate(std::size_t size) noexcept {
  ++tl_allocations;
  tl_bytes_allocated += static_cast<long long>(size);
  if (ban_active()) report_banned_allocation(size);
  return std::malloc(size != 0 ? size : 1);
}

void* guarded_allocate_aligned(std::size_t size, std::size_t align) noexcept {
  ++tl_allocations;
  tl_bytes_allocated += static_cast<long long>(size);
  if (ban_active()) report_banned_allocation(size);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size != 0 ? size : 1) != 0) return nullptr;
  return ptr;
}

void guarded_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  ++tl_deallocations;
  std::free(ptr);
}

}  // namespace

namespace pops {

AllocationCounter thread_allocation_counter() {
  AllocationCounter counter;
  counter.allocations = tl_allocations;
  counter.deallocations = tl_deallocations;
  counter.bytes_allocated = tl_bytes_allocated;
  return counter;
}

bool allocation_ban_active() { return ban_active(); }

ScopedAllocationBan::ScopedAllocationBan(const char* scope, bool armed)
    : previous_scope_(tl_ban_scope), armed_(armed) {
  if (armed_) {
    ++tl_ban_depth;
    tl_ban_scope = scope;
  }
}

ScopedAllocationBan::~ScopedAllocationBan() {
  if (armed_) {
    --tl_ban_depth;
    tl_ban_scope = previous_scope_;
  }
}

ScopedAllocationAllow::ScopedAllocationAllow() { ++tl_allow_depth; }

ScopedAllocationAllow::~ScopedAllocationAllow() { --tl_allow_depth; }

}  // namespace pops

// The full replaceable-operator set. Throwing forms throw bad_alloc on
// exhaustion (bad_alloc itself does not allocate); nothrow forms return
// nullptr. A banned allocation aborts in every form — that is the
// guard's whole purpose, so the nothrow forms are not exempt.

void* operator new(std::size_t size) {
  void* ptr = guarded_allocate(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = guarded_allocate(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return guarded_allocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return guarded_allocate(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = guarded_allocate_aligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = guarded_allocate_aligned(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return guarded_allocate_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return guarded_allocate_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { guarded_free(ptr); }
void operator delete[](void* ptr) noexcept { guarded_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { guarded_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { guarded_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  guarded_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  guarded_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  guarded_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  guarded_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  guarded_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  guarded_free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  guarded_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  guarded_free(ptr);
}

#endif  // POPS_ALLOC_GUARD
