// Runtime enforcement of the zero-steady-state-allocation contract.
//
// When built with -DPOPS_ALLOC_GUARD=ON (CMake option), this unit
// replaces the global `operator new`/`operator delete` family with
// hooks that keep per-thread counters and honor an RAII
// `ScopedAllocationBan`: any heap allocation on a thread inside a
// banned scope aborts the process with a message naming the scope.
// The hot paths (RoutingEngine routing entry points, Network::execute,
// TrafficServer::execute_window) arm bans on themselves once their
// scratch arenas are warm, so the contract the capacity-snapshot tests
// (scratch_footprint) check *indirectly* is enforced *directly*, at
// runtime, on every guarded CI run — including transient
// allocate-free pairs that leave no footprint behind.
//
// Without the option every type here is an inert no-op and no
// operator is replaced, so the default build carries zero overhead.
//
// All state is thread-local: a ban on one thread never constrains
// another (see test_threading), which is exactly the granularity the
// future BatchRouter needs — each worker arms its own engine.
#pragma once

#include <cstddef>

namespace pops {

// Snapshot of this thread's allocator traffic since thread start.
// Deallocations are counted but never banned: frees in a banned scope
// are legal (freeing is how a transient allocation would try to hide,
// and the allocation itself is what trips the guard).
struct AllocationCounter {
  long long allocations = 0;
  long long deallocations = 0;
  long long bytes_allocated = 0;
};

#if POPS_ALLOC_GUARD

// This thread's counters. Includes allocations made by the standard
// library on this thread (iostream buffers, std::string, ...), so
// compare before/after deltas rather than absolute values.
AllocationCounter thread_allocation_counter();

// True iff an armed ban is active on this thread and no
// ScopedAllocationAllow overrides it.
bool allocation_ban_active();

// While alive (and armed), any heap allocation on this thread aborts:
//   POPS_ALLOC_GUARD: <N>-byte heap allocation inside banned scope '<scope>'
// `scope` must outlive the ban (string literals do). Bans nest; the
// innermost armed scope is the one reported. The `armed` flag lets hot
// paths arm themselves only after their warm-up call has sized every
// arena — a disarmed ban is inert and does not weaken an enclosing
// armed one.
class ScopedAllocationBan {
 public:
  explicit ScopedAllocationBan(const char* scope, bool armed = true);
  ScopedAllocationBan(const ScopedAllocationBan&) = delete;
  ScopedAllocationBan& operator=(const ScopedAllocationBan&) = delete;
  ~ScopedAllocationBan();

 private:
  const char* const previous_scope_;
  const bool armed_;
};

// Escape hatch: while alive, allocations on this thread are permitted
// even under a ban. For cold failure paths only — composing a
// diagnostic message on the way to POPS_CHECK/abort must not itself
// abort with the wrong message.
class ScopedAllocationAllow {
 public:
  ScopedAllocationAllow();
  ScopedAllocationAllow(const ScopedAllocationAllow&) = delete;
  ScopedAllocationAllow& operator=(const ScopedAllocationAllow&) = delete;
  ~ScopedAllocationAllow();
};

#else  // !POPS_ALLOC_GUARD

inline AllocationCounter thread_allocation_counter() {
  return AllocationCounter{};
}

inline bool allocation_ban_active() { return false; }

class ScopedAllocationBan {
 public:
  explicit ScopedAllocationBan(const char* scope, bool armed = true) {
    (void)scope;
    (void)armed;
  }
  ScopedAllocationBan(const ScopedAllocationBan&) = delete;
  ScopedAllocationBan& operator=(const ScopedAllocationBan&) = delete;
  // User-provided so `ScopedAllocationBan ban("x");` is not flagged as
  // an unused variable by -Wunused-variable in the unguarded build.
  ~ScopedAllocationBan() {}
};

class ScopedAllocationAllow {
 public:
  ScopedAllocationAllow() {}
  ScopedAllocationAllow(const ScopedAllocationAllow&) = delete;
  ScopedAllocationAllow& operator=(const ScopedAllocationAllow&) = delete;
  ~ScopedAllocationAllow() {}
};

#endif  // POPS_ALLOC_GUARD

}  // namespace pops
