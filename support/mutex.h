// Annotated mutex wrapper: std::mutex plus the clang capability
// attributes from support/thread_annotations.h, so GUARDED_BY members
// and REQUIRES/EXCLUDES contracts are checked at compile time on the
// clang CI leg. The wrapper adds no state and no overhead over
// std::mutex — it exists purely to carry the annotations, which the
// standard library types cannot.
//
// The mutex is NOT recursive: a public locked method must never call
// another public locked method. Factor the shared body into a private
// `*_locked` helper annotated POPS_REQUIRES(mu_) instead —
// serve/traffic_server.h shows the pattern.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.h"

namespace pops {

class POPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() POPS_ACQUIRE() { mu_.lock(); }
  void unlock() POPS_RELEASE() { mu_.unlock(); }
  bool try_lock() POPS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock. Takes a pointer so the call site reads
// `MutexLock lock(&mu_);` — grabbing a lock looks like taking an
// address, which makes accidental copies impossible to write.
class POPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) POPS_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() POPS_RELEASE() { mu_->unlock(); }

 private:
  Mutex* const mu_;
};

// Condition variable over the annotated Mutex. wait() releases and
// re-acquires the capability internally, which clang's intra-procedural
// thread-safety analysis cannot model — the method carries
// POPS_REQUIRES so call sites are still checked for holding the lock,
// and the analysis is switched off only inside the one-line body.
// Callers use the standard predicate-loop shape:
//
//   MutexLock lock(&mu_);
//   while (!predicate()) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) POPS_REQUIRES(mu) POPS_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace pops
