// Minimal non-owning contiguous view (C++17 stand-in for std::span).
//
// The flat-plan refactor hands schedule slots to the simulator and the
// verifier as views into one contiguous Transmission array, so the hot
// path never copies or allocates per slot. Only the surface the
// routing core needs is implemented.
#pragma once

#include <cstddef>
#include <vector>

#include "support/check.h"

namespace pops {

template <typename T>
class Span {
 public:
  Span() : data_(nullptr), size_(0) {}
  Span(T* data, std::size_t size) : data_(data), size_(size) {}
  /// A whole vector (non-const vectors convert to Span<const T> too).
  /// Temporaries are rejected: a Span must never outlive its storage.
  template <typename U>
  Span(const std::vector<U>& values)  // NOLINT(runtime/explicit)
      : data_(values.data()), size_(values.size()) {}
  template <typename U>
  Span(std::vector<U>& values)  // NOLINT(runtime/explicit)
      : data_(values.data()), size_(values.size()) {}
  template <typename U>
  Span(const std::vector<U>&& values) = delete;

  T* data() const { return data_; }
  std::size_t size() const { return size_; }
  int count() const { return as_int(size_); }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) const {
    POPS_CHECK(i < size_, "Span index out of range");
    return data_[i];
  }

  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }

 private:
  T* data_;
  std::size_t size_;
};

}  // namespace pops
