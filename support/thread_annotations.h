// Clang thread-safety-analysis annotations (no-ops elsewhere).
//
// The macros mirror the standard set (Abseil / LLVM docs): capabilities
// name lockable things, GUARDED_BY binds state to a capability, and
// REQUIRES/EXCLUDES state a function's locking preconditions. Under
// clang the CI builds with -Wthread-safety -Werror=thread-safety-analysis,
// so a member annotated POPS_GUARDED_BY(mu_) that is touched without
// mu_ held is a compile error, not a TSan lottery ticket. Under gcc and
// MSVC every macro expands to nothing.
//
// support/mutex.h provides the annotated Mutex/MutexLock pair these
// macros are designed around; serve/traffic_server.h is the worked
// example. Single-threaded hot-path classes (RoutingEngine,
// EdgeColorer, Network) are marked POPS_THREAD_COMPATIBLE instead: the
// caller owns the synchronization, one instance per thread — the
// BatchRouter discipline.
#pragma once

#if defined(__clang__)
#define POPS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define POPS_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Declares a class to be a capability (e.g. a mutex wrapper).
#define POPS_CAPABILITY(x) POPS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class that acquires on construction and releases
/// on destruction.
#define POPS_SCOPED_CAPABILITY \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated member may only be read or written while holding the
/// given capability.
#define POPS_GUARDED_BY(x) POPS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The pointed-to data (not the pointer itself) is guarded.
#define POPS_PT_GUARDED_BY(x) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function must be called with the listed capabilities held.
#define POPS_REQUIRES(...) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function must be called with the listed capabilities NOT held
/// (it acquires them itself; prevents self-deadlock).
#define POPS_EXCLUDES(...) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release
/// them before returning.
#define POPS_ACQUIRE(...) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define POPS_RELEASE(...) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `value`.
#define POPS_TRY_ACQUIRE(...) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define POPS_RETURN_CAPABILITY(x) \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Use only for
/// init/teardown paths the analysis cannot model; say why at the site.
#define POPS_NO_THREAD_SAFETY_ANALYSIS \
  POPS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Documentation-only marker: instances confine all mutable state to
/// one thread at a time and the *caller* provides the synchronization
/// (the BatchRouter pattern is one engine per thread, never a shared
/// engine). Expands to nothing on every compiler — it exists so grep
/// can audit which classes claim the contract, and so the contract is
/// stated at the class head rather than buried in a comment.
#define POPS_THREAD_COMPATIBLE
