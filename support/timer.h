// Wall-clock timing for the experiment tables.
#pragma once

#include <chrono>

namespace pops {

/// Monotonic stopwatch, started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double nanos() const {
    return std::chrono::duration<double, std::nano>(Clock::now() - start_)
        .count();
  }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pops
