#include "support/table.h"

#include <algorithm>

#include "support/check.h"

namespace pops {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  POPS_CHECK(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  const std::size_t columns = std::max(
      headers_.size(),
      rows_.empty()
          ? std::size_t{0}
          : std::max_element(rows_.begin(), rows_.end(),
                             [](const auto& a, const auto& b) {
                               return a.size() < b.size();
                             })
                ->size());
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < columns) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < columns; ++c) {
    rule += widths[c] + (c + 1 < columns ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace pops
